//! Integration tests for the baseline/ratchet workflow and SARIF output,
//! driven by real findings produced from the fixture files.

use std::fs;
use std::path::Path;

use dragster_lint::report::{parse_json, partial_fingerprint, ratchet, to_sarif, Baseline, Json};
use dragster_lint::{apply_fixes, lint_files_semantic, Finding, RuleSet};

fn fixture_findings(names: &[&str]) -> Vec<Finding> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let sources: Vec<(String, String)> = names
        .iter()
        .map(|n| {
            let text = fs::read_to_string(dir.join(n))
                .unwrap_or_else(|e| panic!("fixture {n} unreadable: {e}"));
            (n.to_string(), text)
        })
        .collect();
    lint_files_semantic(&sources, RuleSet::all())
}

#[test]
fn ratchet_accepts_an_unchanged_baseline() {
    let findings = fixture_findings(&["l8_index_pos.rs", "l7_units_pos.rs"]);
    assert!(!findings.is_empty(), "fixtures must produce findings");
    let baseline = Baseline::from_findings(&findings);
    let outcome = ratchet(&baseline, &findings);
    assert!(outcome.ok(), "identical findings must pass: {outcome:?}");
    assert!(outcome.new.is_empty());
    assert!(!outcome.can_tighten());
}

#[test]
fn ratchet_rejects_a_grown_finding_set() {
    let old = fixture_findings(&["l8_index_pos.rs"]);
    let new = fixture_findings(&["l8_index_pos.rs", "l7_units_pos.rs"]);
    assert!(new.len() > old.len());
    let baseline = Baseline::from_findings(&old);
    let outcome = ratchet(&baseline, &new);
    assert!(!outcome.ok(), "growth must fail the ratchet: {outcome:?}");
    assert!(
        outcome.new.iter().any(|(_, code, _, _, _)| code == "L7"),
        "the added L7 finding must be reported as new debt: {outcome:?}"
    );
}

#[test]
fn ratchet_detects_paydown() {
    let old = fixture_findings(&["l8_index_pos.rs", "l7_units_pos.rs"]);
    let new = fixture_findings(&["l8_index_pos.rs"]);
    let baseline = Baseline::from_findings(&old);
    let outcome = ratchet(&baseline, &new);
    assert!(outcome.ok(), "shrinking is always fine: {outcome:?}");
    assert!(
        outcome.can_tighten(),
        "paydown should invite a tighter baseline: {outcome:?}"
    );
}

#[test]
fn baseline_roundtrips_through_json() {
    let findings = fixture_findings(&[
        "l5_reach_pos.rs",
        "l6_rng_pos.rs",
        "l7_units_pos.rs",
        "l8_index_pos.rs",
    ]);
    let baseline = Baseline::from_findings(&findings);
    let reparsed = Baseline::from_json(&baseline.to_json()).expect("roundtrip parses");
    assert_eq!(baseline.total(), reparsed.total());
    let outcome = ratchet(&reparsed, &findings);
    assert!(
        outcome.ok(),
        "roundtripped baseline must match: {outcome:?}"
    );
}

#[test]
fn sarif_output_is_valid_json_with_rule_ids() {
    let findings = fixture_findings(&["l5_reach_pos.rs", "l8_index_pos.rs"]);
    let sarif = to_sarif(&findings);
    let parsed = parse_json(&sarif).expect("SARIF output must parse as JSON");
    let Json::Obj(root) = parsed else {
        panic!("SARIF root must be an object");
    };
    assert!(root.iter().any(|(k, _)| k == "runs"));
    assert!(sarif.contains("\"L5\"") && sarif.contains("\"L8\""));
    // The L5 result must carry its call chain in the message text.
    assert!(
        sarif.contains("entry") && sarif.contains("leaf"),
        "reachability chain missing from SARIF message"
    );
}

#[test]
fn sarif_results_carry_stable_partial_fingerprints() {
    let findings = fixture_findings(&["l8_index_pos.rs", "l9_taint_pos.rs"]);
    assert!(findings.len() >= 2, "need L8 + L9 findings");
    let sarif = to_sarif(&findings);
    assert!(
        sarif.contains("partialFingerprints") && sarif.contains("dragsterLint/v1"),
        "every result must carry the fingerprint key"
    );
    for f in &findings {
        let fp = partial_fingerprint(f);
        assert_eq!(fp.len(), 16, "fingerprint is a 64-bit hex string: {fp}");
        assert!(sarif.contains(&fp), "SARIF must embed {fp} for {f}");
    }
    // Line-number drift must not change the fingerprint: rerunning the
    // same fixtures yields identical fingerprints.
    let again = fixture_findings(&["l8_index_pos.rs", "l9_taint_pos.rs"]);
    let a: Vec<String> = findings.iter().map(partial_fingerprint).collect();
    let b: Vec<String> = again.iter().map(partial_fingerprint).collect();
    assert_eq!(a, b);
}

#[test]
fn ratchet_rejects_a_new_flow_violation() {
    // A clean tree (empty baseline) confronted with a fresh L9 taint
    // finding: the ratchet must fail and name the new debt.
    let clean = Baseline::from_findings(&[]);
    let tainted = fixture_findings(&["l9_taint_pos.rs"]);
    assert_eq!(tainted.len(), 1, "fixture produces exactly one L9");
    let outcome = ratchet(&clean, &tainted);
    assert!(!outcome.ok(), "new flow debt must fail: {outcome:?}");
    assert!(
        outcome.new.iter().any(|(file, code, _, was, now)| {
            file == "l9_taint_pos.rs" && code == "L9" && *was == 0 && *now == 1
        }),
        "the L9 finding must surface as new debt: {outcome:?}"
    );
}

#[test]
fn baseline_v1_files_migrate_on_read() {
    // A version-1 baseline (no fingerprint field) must parse, derive
    // fingerprints from the descriptive fields, and ratchet cleanly
    // against the same findings.
    let findings = fixture_findings(&["l8_index_pos.rs"]);
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    let v1 = format!(
        "{{\n  \"version\": 1,\n  \"total\": 1,\n  \"findings\": [\n    \
         {{\"file\": \"{}\", \"code\": \"{}\", \"token\": \"{}\", \"count\": 1}}\n  ]\n}}\n",
        f.file, f.code, f.token
    );
    let migrated = Baseline::from_json(&v1).expect("v1 parses");
    assert_eq!(migrated.total(), findings.len());
    let outcome = ratchet(&migrated, &findings);
    assert!(outcome.ok(), "migrated v1 must match v2 runs: {outcome:?}");
}

#[test]
fn fix_applied_twice_is_a_no_op() {
    // `--fix` must be idempotent: the first pass rewrites `xs[i]` into
    // `xs.get(i)`, the rescan of the patched file carries no mechanical
    // fix for that site, and the bytes stop changing.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let tmp = std::env::temp_dir().join("dragster-lint-fix-idempotence");
    fs::create_dir_all(&tmp).expect("temp dir creatable");
    let name = "l8_index_pos.rs";
    let src = fs::read_to_string(dir.join(name)).expect("fixture readable");
    fs::write(tmp.join(name), &src).expect("temp copy writable");

    let scan = |root: &Path| -> Vec<Finding> {
        let text = fs::read_to_string(root.join(name)).expect("copy readable");
        lint_files_semantic(&[(name.to_string(), text)], RuleSet::all())
    };

    let first = apply_fixes(&tmp, &scan(&tmp)).expect("first --fix pass");
    assert!(
        !first.applied.is_empty(),
        "the L8 fixture must yield a mechanical fix: {first:?}"
    );
    let after_first = fs::read_to_string(tmp.join(name)).expect("patched copy readable");
    assert_ne!(after_first, src, "the first pass must rewrite the file");

    let second = apply_fixes(&tmp, &scan(&tmp)).expect("second --fix pass");
    assert!(
        second.applied.is_empty(),
        "the second pass must apply nothing: {:?}",
        second.applied
    );
    let after_second = fs::read_to_string(tmp.join(name)).expect("patched copy readable");
    assert_eq!(after_first, after_second, "--fix must be idempotent");
    let _ = fs::remove_dir_all(&tmp);
}
