//! Integration tests for the baseline/ratchet workflow and SARIF output,
//! driven by real findings produced from the fixture files.

use std::fs;
use std::path::Path;

use dragster_lint::report::{parse_json, ratchet, to_sarif, Baseline, Json};
use dragster_lint::{lint_files_semantic, Finding, RuleSet};

fn fixture_findings(names: &[&str]) -> Vec<Finding> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let sources: Vec<(String, String)> = names
        .iter()
        .map(|n| {
            let text = fs::read_to_string(dir.join(n))
                .unwrap_or_else(|e| panic!("fixture {n} unreadable: {e}"));
            (n.to_string(), text)
        })
        .collect();
    lint_files_semantic(&sources, RuleSet::all())
}

#[test]
fn ratchet_accepts_an_unchanged_baseline() {
    let findings = fixture_findings(&["l8_index_pos.rs", "l7_units_pos.rs"]);
    assert!(!findings.is_empty(), "fixtures must produce findings");
    let baseline = Baseline::from_findings(&findings);
    let outcome = ratchet(&baseline, &findings);
    assert!(outcome.ok(), "identical findings must pass: {outcome:?}");
    assert!(outcome.new.is_empty());
    assert!(!outcome.can_tighten());
}

#[test]
fn ratchet_rejects_a_grown_finding_set() {
    let old = fixture_findings(&["l8_index_pos.rs"]);
    let new = fixture_findings(&["l8_index_pos.rs", "l7_units_pos.rs"]);
    assert!(new.len() > old.len());
    let baseline = Baseline::from_findings(&old);
    let outcome = ratchet(&baseline, &new);
    assert!(!outcome.ok(), "growth must fail the ratchet: {outcome:?}");
    assert!(
        outcome.new.iter().any(|(_, code, _, _, _)| code == "L7"),
        "the added L7 finding must be reported as new debt: {outcome:?}"
    );
}

#[test]
fn ratchet_detects_paydown() {
    let old = fixture_findings(&["l8_index_pos.rs", "l7_units_pos.rs"]);
    let new = fixture_findings(&["l8_index_pos.rs"]);
    let baseline = Baseline::from_findings(&old);
    let outcome = ratchet(&baseline, &new);
    assert!(outcome.ok(), "shrinking is always fine: {outcome:?}");
    assert!(
        outcome.can_tighten(),
        "paydown should invite a tighter baseline: {outcome:?}"
    );
}

#[test]
fn baseline_roundtrips_through_json() {
    let findings = fixture_findings(&[
        "l5_reach_pos.rs",
        "l6_rng_pos.rs",
        "l7_units_pos.rs",
        "l8_index_pos.rs",
    ]);
    let baseline = Baseline::from_findings(&findings);
    let reparsed = Baseline::from_json(&baseline.to_json()).expect("roundtrip parses");
    assert_eq!(baseline.total(), reparsed.total());
    let outcome = ratchet(&reparsed, &findings);
    assert!(
        outcome.ok(),
        "roundtripped baseline must match: {outcome:?}"
    );
}

#[test]
fn sarif_output_is_valid_json_with_rule_ids() {
    let findings = fixture_findings(&["l5_reach_pos.rs", "l8_index_pos.rs"]);
    let sarif = to_sarif(&findings);
    let parsed = parse_json(&sarif).expect("SARIF output must parse as JSON");
    let Json::Obj(root) = parsed else {
        panic!("SARIF root must be an object");
    };
    assert!(root.iter().any(|(k, _)| k == "runs"));
    assert!(sarif.contains("\"L5\"") && sarif.contains("\"L8\""));
    // The L5 result must carry its call chain in the message text.
    assert!(
        sarif.contains("entry") && sarif.contains("leaf"),
        "reachability chain missing from SARIF message"
    );
}
