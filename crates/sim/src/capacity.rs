//! Ground-truth capacity models: configuration → service capacity.
//!
//! The paper's central learning problem is that the service capacity
//! `y_i(x_i)` of an operator under configuration `x_i` (number of tasks) is
//! *unknown* and "non-trivial (e.g., non-linear and multi-modal)"
//! (Section 1). The simulator therefore owns a ground-truth
//! [`CapacityModel`] per operator — tuples/second as a function of the task
//! count — that the GP in the controller has to learn from noisy Eq.-8
//! samples. Model shapes mirror what real Flink operators exhibit:
//! near-linear scaling with coordination overhead, saturation (a shared
//! external service becomes the limit), and explicit per-level tables for
//! multi-modal behaviour.

use serde::{Deserialize, Serialize};

/// Tuples/second an operator can process as a function of its task count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CapacityModel {
    /// Ideal linear scaling: `rate · n`.
    Linear { per_task: f64 },
    /// Linear with coordination overhead (Universal-Scalability-style
    /// contention): `per_task · n / (1 + contention · (n − 1))`.
    /// `contention = 0` reduces to linear; `0.05` loses ~30 % at n = 10.
    Contended { per_task: f64, contention: f64 },
    /// Saturating: `max · n / (n + half)` — an external dependency (e.g.
    /// the Redis sink of the Yahoo benchmark) caps the aggregate rate.
    Saturating { max: f64, half: f64 },
    /// Explicit per-level capacities (index 0 → 1 task). Queries beyond the
    /// table clamp to the last entry. Allows multi-modal ground truth.
    Table { levels: Vec<f64> },
}

impl CapacityModel {
    /// True capacity under `tasks` parallel instances.
    ///
    /// # Panics
    /// If `tasks == 0` — a deployed operator always has at least one task.
    pub fn capacity(&self, tasks: usize) -> f64 {
        assert!(tasks >= 1, "an operator needs at least one task");
        let n = tasks as f64;
        match self {
            CapacityModel::Linear { per_task } => per_task * n,
            CapacityModel::Contended {
                per_task,
                contention,
            } => per_task * n / (1.0 + contention * (n - 1.0)),
            CapacityModel::Saturating { max, half } => max * n / (n + half),
            CapacityModel::Table { levels } => {
                let idx = tasks.saturating_sub(1).min(levels.len().saturating_sub(1));
                levels.get(idx).copied().unwrap_or(0.0)
            }
        }
    }

    /// Smallest task count whose capacity reaches `target`, if any exists
    /// within `max_tasks`.
    pub fn tasks_for(&self, target: f64, max_tasks: usize) -> Option<usize> {
        (1..=max_tasks).find(|&n| self.capacity(n) >= target)
    }

    /// Validate: capacities must be positive and non-decreasing in the task
    /// count (more resources never process fewer tuples in expectation).
    pub fn validate(&self, max_tasks: usize) -> Result<(), String> {
        let mut prev = 0.0;
        for n in 1..=max_tasks {
            let c = self.capacity(n);
            if c <= 0.0 {
                return Err(format!("capacity({n}) = {c} not positive"));
            }
            if c < prev - 1e-9 {
                return Err(format!(
                    "capacity({n}) = {c} < capacity({}) = {prev}",
                    n - 1
                ));
            }
            prev = c;
        }
        Ok(())
    }
}

/// A complete simulated application: the DAG plus one ground-truth capacity
/// model per operator. This is what workloads construct and what both
/// simulator engines execute.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Application {
    pub topology: dragster_dag::Topology,
    /// One model per operator, in capacity-index order.
    pub capacity_models: Vec<CapacityModel>,
}

impl Application {
    /// Build, validating that models and topology agree.
    pub fn new(
        topology: dragster_dag::Topology,
        capacity_models: Vec<CapacityModel>,
    ) -> Result<Application, crate::SimError> {
        if capacity_models.len() != topology.n_operators() {
            return Err(crate::SimError::InvalidApplication {
                reason: format!(
                    "{} capacity models for {} operators",
                    capacity_models.len(),
                    topology.n_operators()
                ),
            });
        }
        for (i, m) in capacity_models.iter().enumerate() {
            m.validate(32)
                .map_err(|e| crate::SimError::InvalidApplication {
                    reason: format!("operator {}: {e}", topology.operator_name(i)),
                })?;
        }
        Ok(Application {
            topology,
            capacity_models,
        })
    }

    /// Number of operators `M`.
    pub fn n_operators(&self) -> usize {
        self.topology.n_operators()
    }

    /// True (noise-free) capacity vector for a deployment.
    pub fn true_capacities(&self, tasks: &[usize]) -> Vec<f64> {
        let mut out = Vec::with_capacity(tasks.len());
        self.true_capacities_into(tasks, &mut out);
        out
    }

    /// Allocation-free variant of [`Application::true_capacities`]: clears
    /// `out` and fills it in place (the fluid engine calls this every
    /// slot with a reused scratch vector).
    pub fn true_capacities_into(&self, tasks: &[usize], out: &mut Vec<f64>) {
        assert_eq!(tasks.len(), self.capacity_models.len());
        out.clear();
        out.extend(
            self.capacity_models
                .iter()
                .zip(tasks.iter())
                .map(|(m, &n)| m.capacity(n)),
        );
    }

    /// Noise-free steady-state application throughput for a deployment —
    /// the oracle primitive behind `y*` and the "within 10 % of optimal"
    /// convergence criterion.
    ///
    /// # Errors
    /// [`crate::SimError::Dag`] if propagation fails (arity mismatch or a
    /// structurally inconsistent topology).
    pub fn ideal_throughput(
        &self,
        source_rates: &[f64],
        tasks: &[usize],
    ) -> Result<f64, crate::SimError> {
        Ok(dragster_dag::throughput(
            &self.topology,
            source_rates,
            &self.true_capacities(tasks),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_dag::TopologyBuilder;

    #[test]
    fn linear_model() {
        let m = CapacityModel::Linear { per_task: 100.0 };
        assert_eq!(m.capacity(1), 100.0);
        assert_eq!(m.capacity(7), 700.0);
    }

    #[test]
    fn contended_model_has_diminishing_returns() {
        let m = CapacityModel::Contended {
            per_task: 100.0,
            contention: 0.05,
        };
        let c1 = m.capacity(1);
        let c10 = m.capacity(10);
        assert_eq!(c1, 100.0);
        assert!(c10 < 1000.0 && c10 > 600.0, "{c10}");
        // marginal gains shrink
        let g2 = m.capacity(2) - m.capacity(1);
        let g10 = m.capacity(10) - m.capacity(9);
        assert!(g10 < g2);
    }

    #[test]
    fn saturating_model_approaches_max() {
        let m = CapacityModel::Saturating {
            max: 1000.0,
            half: 2.0,
        };
        assert!(m.capacity(20) > 900.0);
        assert!(m.capacity(20) < 1000.0);
    }

    #[test]
    fn table_model_clamps() {
        let m = CapacityModel::Table {
            levels: vec![10.0, 30.0, 35.0],
        };
        assert_eq!(m.capacity(1), 10.0);
        assert_eq!(m.capacity(3), 35.0);
        assert_eq!(m.capacity(9), 35.0);
    }

    #[test]
    fn tasks_for_finds_smallest() {
        let m = CapacityModel::Linear { per_task: 100.0 };
        assert_eq!(m.tasks_for(250.0, 10), Some(3));
        assert_eq!(m.tasks_for(2000.0, 10), None);
    }

    #[test]
    fn validate_rejects_decreasing_table() {
        let m = CapacityModel::Table {
            levels: vec![10.0, 5.0],
        };
        assert!(m.validate(2).is_err());
        let ok = CapacityModel::Table {
            levels: vec![10.0, 20.0],
        };
        assert!(ok.validate(5).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        let _ = CapacityModel::Linear { per_task: 1.0 }.capacity(0);
    }

    fn tiny_app() -> Application {
        let topo = TopologyBuilder::new()
            .source("s")
            .operator("op")
            .sink("k")
            .edge("s", "op")
            .edge("op", "k")
            .build()
            .unwrap();
        Application::new(topo, vec![CapacityModel::Linear { per_task: 50.0 }]).unwrap()
    }

    #[test]
    fn application_checks_model_count() {
        let topo = TopologyBuilder::new()
            .source("s")
            .operator("op")
            .sink("k")
            .edge("s", "op")
            .edge("op", "k")
            .build()
            .unwrap();
        assert!(Application::new(topo, vec![]).is_err());
    }

    #[test]
    fn ideal_throughput_truncated_by_capacity() {
        let app = tiny_app();
        assert_eq!(app.ideal_throughput(&[1000.0], &[2]).unwrap(), 100.0);
        assert_eq!(app.ideal_throughput(&[30.0], &[2]).unwrap(), 30.0);
        assert_eq!(app.true_capacities(&[3]), vec![150.0]);
    }
}
