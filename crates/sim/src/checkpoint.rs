//! Controller checkpoints: durable snapshots of all learner state.
//!
//! Dragster's regret guarantee assumes the controller never loses its
//! learned state, but the controller process is as mortal as the pods it
//! manages. A [`Checkpoint`] captures everything the control plane needs
//! to resume mid-run — the autoscaler's exported learner state (GP
//! observation set, saddle/OGD duals, UCB statistics, RNG positions),
//! the sanitizer history, the retry/backoff state, and the deployment in
//! effect — serialized through the self-contained [`crate::json`] codec
//! so offline stub builds round-trip it, and sealed with an FNV-1a
//! checksum so torn writes are *detected*, never silently restored.
//!
//! The recovery policy lives in [`crate::harness`]: a checkpoint that
//! validates (checksum + version + staleness bound) is restored and the
//! decision journal ([`crate::journal`]) replayed on top; one that does
//! not routes the run to the degraded hold-last-deployment fallback.

use crate::json::{self, Json};
use crate::metrics::{OperatorMetrics, SlotMetrics};
use crate::sanitize::{SanitizeConfig, SanitizerSnapshot};

/// Checkpoint format version; bump on layout changes.
pub const CHECKPOINT_VERSION: usize = 1;

/// Why a checkpoint could not be restored. Every variant routes the
/// harness to the degraded fallback rather than aborting the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// No checkpoint has ever been written.
    Missing,
    /// The blob's checksum does not match (torn/corrupt write).
    Torn { detail: String },
    /// The blob parses but does not decode to a valid checkpoint.
    Malformed { detail: String },
    /// The newest valid checkpoint is older than the staleness bound.
    Stale {
        age_slots: usize,
        max_age_slots: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Missing => write!(f, "no checkpoint available"),
            CheckpointError::Torn { detail } => {
                write!(f, "checkpoint torn/corrupt: {detail}")
            }
            CheckpointError::Malformed { detail } => {
                write!(f, "checkpoint malformed: {detail}")
            }
            CheckpointError::Stale {
                age_slots,
                max_age_slots,
            } => write!(
                f,
                "checkpoint stale: {age_slots} slots old (bound {max_age_slots})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Retry/backoff position of the reconfiguration loop (part of the
/// harness state a restarted controller must not forget — otherwise a
/// crash would silently reset an in-progress exponential backoff).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetrySnapshot {
    pub consecutive_failures: usize,
    /// First slot at which the next reconfiguration may be attempted.
    pub next_attempt: usize,
}

/// A complete controller checkpoint taken at the end of `slot`.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    pub version: usize,
    /// Slot whose decision this checkpoint reflects (taken post-slot).
    pub slot: usize,
    /// Autoscaler scheme name, so a restore onto the wrong policy fails
    /// loudly instead of importing foreign state.
    pub scheme: String,
    /// Deployment in effect when the checkpoint was taken.
    pub deployment: Vec<usize>,
    /// Opaque learner state from
    /// [`Autoscaler::export_state`](crate::harness::Autoscaler::export_state);
    /// `None` for stateless policies.
    pub scaler: Option<Json>,
    pub sanitizer: SanitizerSnapshot,
    pub retry: RetrySnapshot,
}

// ---------------------------------------------------------------------------
// Sealing: `crc-hex \n body` framing shared with the journal.
// ---------------------------------------------------------------------------

/// Frames a serialized body with its FNV-1a checksum: `<16-hex>\n<body>`.
pub fn seal(body: &str) -> String {
    format!(
        "{}\n{}",
        json::u64_to_hex(json::fnv1a64(body.as_bytes())),
        body
    )
}

/// Verifies and strips the checksum frame added by [`seal`].
pub fn unseal(blob: &str) -> Result<&str, String> {
    let Some((crc_hex, body)) = blob.split_once('\n') else {
        return Err("missing checksum frame".to_string());
    };
    let Some(expected) = json::u64_from_hex(crc_hex) else {
        return Err(format!("bad checksum field `{crc_hex}`"));
    };
    let actual = json::fnv1a64(body.as_bytes());
    if actual != expected {
        return Err(format!(
            "checksum mismatch: stored {expected:016x}, computed {actual:016x}"
        ));
    }
    Ok(body)
}

// ---------------------------------------------------------------------------
// Codec.
// ---------------------------------------------------------------------------

fn missing(field: &str) -> CheckpointError {
    CheckpointError::Malformed {
        detail: format!("missing/invalid field `{field}`"),
    }
}

/// Encodes one operator reading bit-exactly.
pub fn encode_operator_metrics(om: &OperatorMetrics) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(om.name.clone())),
        ("tasks".to_string(), json::num(om.tasks)),
        ("input_rate".to_string(), json::bits(om.input_rate)),
        ("input_rates".to_string(), json::bits_arr(&om.input_rates)),
        ("output_rate".to_string(), json::bits(om.output_rate)),
        ("offered_load".to_string(), json::bits(om.offered_load)),
        ("cpu_util".to_string(), json::bits(om.cpu_util)),
        (
            "capacity_sample".to_string(),
            json::bits(om.capacity_sample),
        ),
        ("buffer_tuples".to_string(), json::bits(om.buffer_tuples)),
        (
            "latency_estimate_secs".to_string(),
            json::bits(om.latency_estimate_secs),
        ),
        ("backpressure".to_string(), Json::Bool(om.backpressure)),
        ("degraded".to_string(), Json::Bool(om.degraded)),
    ])
}

/// Writes one operator reading directly into `out`, byte-identical to
/// `encode_operator_metrics(om).render()` but without building the
/// intermediate [`Json`] tree. The journal appends one record per slot,
/// which put the tree construction (a dozen `String` key allocations per
/// operator) on the controller hot path; the writer pair keeps the wire
/// format while allocating nothing. Byte-equality with the tree encoder
/// is pinned by tests, so [`decode_operator_metrics`] is the inverse of
/// both.
pub fn write_operator_metrics(om: &OperatorMetrics, out: &mut String) {
    out.push_str("{\"name\":\"");
    json::escape_into(&om.name, out);
    out.push_str("\",\"tasks\":");
    json::push_usize(om.tasks, out);
    out.push_str(",\"input_rate\":\"");
    json::push_f64_hex(om.input_rate, out);
    out.push_str("\",\"input_rates\":[");
    for (i, &r) in om.input_rates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json::push_f64_hex(r, out);
        out.push('"');
    }
    out.push_str("],\"output_rate\":\"");
    json::push_f64_hex(om.output_rate, out);
    out.push_str("\",\"offered_load\":\"");
    json::push_f64_hex(om.offered_load, out);
    out.push_str("\",\"cpu_util\":\"");
    json::push_f64_hex(om.cpu_util, out);
    out.push_str("\",\"capacity_sample\":\"");
    json::push_f64_hex(om.capacity_sample, out);
    out.push_str("\",\"buffer_tuples\":\"");
    json::push_f64_hex(om.buffer_tuples, out);
    out.push_str("\",\"latency_estimate_secs\":\"");
    json::push_f64_hex(om.latency_estimate_secs, out);
    out.push_str("\",\"backpressure\":");
    out.push_str(if om.backpressure { "true" } else { "false" });
    out.push_str(",\"degraded\":");
    out.push_str(if om.degraded { "true" } else { "false" });
    out.push('}');
}

/// Decodes one operator reading (inverse of [`encode_operator_metrics`]).
pub fn decode_operator_metrics(j: &Json) -> Result<OperatorMetrics, CheckpointError> {
    let f = |k: &str| {
        j.get(k)
            .and_then(Json::as_f64_bits)
            .ok_or_else(|| missing(k))
    };
    Ok(OperatorMetrics {
        name: j
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("name"))?
            .to_string(),
        tasks: j
            .get("tasks")
            .and_then(Json::as_usize)
            .ok_or_else(|| missing("tasks"))?,
        input_rate: f("input_rate")?,
        input_rates: j
            .get("input_rates")
            .and_then(json::bits_vec)
            .ok_or_else(|| missing("input_rates"))?,
        output_rate: f("output_rate")?,
        offered_load: f("offered_load")?,
        cpu_util: f("cpu_util")?,
        capacity_sample: f("capacity_sample")?,
        buffer_tuples: f("buffer_tuples")?,
        latency_estimate_secs: f("latency_estimate_secs")?,
        backpressure: j
            .get("backpressure")
            .and_then(Json::as_bool)
            .ok_or_else(|| missing("backpressure"))?,
        degraded: j
            .get("degraded")
            .and_then(Json::as_bool)
            .ok_or_else(|| missing("degraded"))?,
    })
}

/// Encodes one raw slot snapshot bit-exactly (used by the journal, whose
/// records store *pre-sanitize* metrics for replay).
pub fn encode_slot_metrics(m: &SlotMetrics) -> Json {
    Json::Obj(vec![
        ("t".to_string(), json::num(m.t)),
        ("sim_time_secs".to_string(), json::bits(m.sim_time_secs)),
        ("throughput".to_string(), json::bits(m.throughput)),
        (
            "processed_tuples".to_string(),
            json::bits(m.processed_tuples),
        ),
        ("dropped_tuples".to_string(), json::bits(m.dropped_tuples)),
        ("cost_dollars".to_string(), json::bits(m.cost_dollars)),
        ("pods".to_string(), json::num(m.pods)),
        ("source_rates".to_string(), json::bits_arr(&m.source_rates)),
        ("reconfigured".to_string(), Json::Bool(m.reconfigured)),
        ("pause_secs".to_string(), json::bits(m.pause_secs)),
        (
            "operators".to_string(),
            Json::Arr(m.operators.iter().map(encode_operator_metrics).collect()),
        ),
    ])
}

/// Writes one raw slot snapshot directly into `out`, byte-identical to
/// `encode_slot_metrics(m).render()` (see [`write_operator_metrics`] for
/// why the allocation-free form exists).
pub fn write_slot_metrics(m: &SlotMetrics, out: &mut String) {
    out.push_str("{\"t\":");
    json::push_usize(m.t, out);
    out.push_str(",\"sim_time_secs\":\"");
    json::push_f64_hex(m.sim_time_secs, out);
    out.push_str("\",\"throughput\":\"");
    json::push_f64_hex(m.throughput, out);
    out.push_str("\",\"processed_tuples\":\"");
    json::push_f64_hex(m.processed_tuples, out);
    out.push_str("\",\"dropped_tuples\":\"");
    json::push_f64_hex(m.dropped_tuples, out);
    out.push_str("\",\"cost_dollars\":\"");
    json::push_f64_hex(m.cost_dollars, out);
    out.push_str("\",\"pods\":");
    json::push_usize(m.pods, out);
    out.push_str(",\"source_rates\":[");
    for (i, &r) in m.source_rates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json::push_f64_hex(r, out);
        out.push('"');
    }
    out.push_str("],\"reconfigured\":");
    out.push_str(if m.reconfigured { "true" } else { "false" });
    out.push_str(",\"pause_secs\":\"");
    json::push_f64_hex(m.pause_secs, out);
    out.push_str("\",\"operators\":[");
    for (i, om) in m.operators.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_operator_metrics(om, out);
    }
    out.push_str("]}");
}

/// Decodes one slot snapshot (inverse of [`encode_slot_metrics`]).
pub fn decode_slot_metrics(j: &Json) -> Result<SlotMetrics, CheckpointError> {
    let f = |k: &str| {
        j.get(k)
            .and_then(Json::as_f64_bits)
            .ok_or_else(|| missing(k))
    };
    let operators = j
        .get("operators")
        .and_then(Json::as_arr)
        .ok_or_else(|| missing("operators"))?
        .iter()
        .map(decode_operator_metrics)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SlotMetrics {
        t: j.get("t")
            .and_then(Json::as_usize)
            .ok_or_else(|| missing("t"))?,
        sim_time_secs: f("sim_time_secs")?,
        throughput: f("throughput")?,
        processed_tuples: f("processed_tuples")?,
        dropped_tuples: f("dropped_tuples")?,
        cost_dollars: f("cost_dollars")?,
        pods: j
            .get("pods")
            .and_then(Json::as_usize)
            .ok_or_else(|| missing("pods"))?,
        source_rates: j
            .get("source_rates")
            .and_then(json::bits_vec)
            .ok_or_else(|| missing("source_rates"))?,
        reconfigured: j
            .get("reconfigured")
            .and_then(Json::as_bool)
            .ok_or_else(|| missing("reconfigured"))?,
        pause_secs: f("pause_secs")?,
        operators,
    })
}

fn encode_sanitizer(s: &SanitizerSnapshot) -> Json {
    Json::Obj(vec![
        ("spike_factor".to_string(), json::bits(s.cfg.spike_factor)),
        ("min_history".to_string(), json::num(s.cfg.min_history)),
        (
            "last_valid".to_string(),
            Json::Arr(
                s.last_valid
                    .iter()
                    .map(|lv| match lv {
                        Some(om) => encode_operator_metrics(om),
                        None => Json::Null,
                    })
                    .collect(),
            ),
        ),
        ("per_task_max".to_string(), json::bits_arr(&s.per_task_max)),
        (
            "accepted".to_string(),
            Json::Arr(s.accepted.iter().map(|&a| json::num(a)).collect()),
        ),
    ])
}

fn decode_sanitizer(j: &Json) -> Result<SanitizerSnapshot, CheckpointError> {
    let last_valid = j
        .get("last_valid")
        .and_then(Json::as_arr)
        .ok_or_else(|| missing("last_valid"))?
        .iter()
        .map(|lv| match lv {
            Json::Null => Ok(None),
            other => decode_operator_metrics(other).map(Some),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SanitizerSnapshot {
        cfg: SanitizeConfig {
            spike_factor: j
                .get("spike_factor")
                .and_then(Json::as_f64_bits)
                .ok_or_else(|| missing("spike_factor"))?,
            min_history: j
                .get("min_history")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("min_history"))?,
        },
        last_valid,
        per_task_max: j
            .get("per_task_max")
            .and_then(json::bits_vec)
            .ok_or_else(|| missing("per_task_max"))?,
        accepted: j
            .get("accepted")
            .and_then(json::usize_vec)
            .ok_or_else(|| missing("accepted"))?,
    })
}

impl Checkpoint {
    /// Serializes to a sealed blob (`crc\n{json}`).
    pub fn encode(&self) -> String {
        let body = Json::Obj(vec![
            ("version".to_string(), json::num(self.version)),
            ("slot".to_string(), json::num(self.slot)),
            ("scheme".to_string(), Json::Str(self.scheme.clone())),
            (
                "deployment".to_string(),
                Json::Arr(self.deployment.iter().map(|&t| json::num(t)).collect()),
            ),
            (
                "scaler".to_string(),
                self.scaler.clone().unwrap_or(Json::Null),
            ),
            ("sanitizer".to_string(), encode_sanitizer(&self.sanitizer)),
            (
                "retry_consecutive_failures".to_string(),
                json::num(self.retry.consecutive_failures),
            ),
            (
                "retry_next_attempt".to_string(),
                json::num(self.retry.next_attempt),
            ),
        ]);
        seal(&body.render())
    }

    /// Deserializes and validates a sealed blob. Checksum failures come
    /// back as [`CheckpointError::Torn`]; structural problems as
    /// [`CheckpointError::Malformed`].
    pub fn decode(blob: &str) -> Result<Checkpoint, CheckpointError> {
        let body = unseal(blob).map_err(|detail| CheckpointError::Torn { detail })?;
        let j = json::parse_json(body).map_err(|detail| CheckpointError::Malformed { detail })?;
        let version = j
            .get("version")
            .and_then(Json::as_usize)
            .ok_or_else(|| missing("version"))?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Malformed {
                detail: format!("unsupported version {version}"),
            });
        }
        Ok(Checkpoint {
            version,
            slot: j
                .get("slot")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("slot"))?,
            scheme: j
                .get("scheme")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("scheme"))?
                .to_string(),
            deployment: j
                .get("deployment")
                .and_then(json::usize_vec)
                .ok_or_else(|| missing("deployment"))?,
            scaler: match j.get("scaler") {
                None | Some(Json::Null) => None,
                Some(other) => Some(other.clone()),
            },
            sanitizer: decode_sanitizer(j.get("sanitizer").ok_or_else(|| missing("sanitizer"))?)?,
            retry: RetrySnapshot {
                consecutive_failures: j
                    .get("retry_consecutive_failures")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| missing("retry_consecutive_failures"))?,
                next_attempt: j
                    .get("retry_next_attempt")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| missing("retry_next_attempt"))?,
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Store.
// ---------------------------------------------------------------------------

/// The controller's stable storage for checkpoints: keeps the newest
/// sealed blob. In-memory here (the simulator's "durable" store), but the
/// interface — write sealed blobs, validate on load, tolerate torn data —
/// is exactly what a file- or object-store-backed implementation needs.
#[derive(Clone, Debug, Default)]
pub struct CheckpointStore {
    latest: Option<String>,
}

impl CheckpointStore {
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Persists a checkpoint (atomically replaces the previous one).
    pub fn write(&mut self, ckpt: &Checkpoint) {
        self.latest = Some(ckpt.encode());
    }

    /// True once at least one write happened (even a later-corrupted one).
    pub fn has_checkpoint(&self) -> bool {
        self.latest.is_some()
    }

    /// Chaos hook: tear the newest blob, as a crash mid-write would.
    /// Truncation (rather than bit-flipping) models the torn tail of an
    /// interrupted append; the checksum catches both. No-op when nothing
    /// has been written.
    pub fn corrupt_latest(&mut self) {
        if let Some(blob) = self.latest.as_mut() {
            let keep = blob.len() / 2;
            blob.truncate(keep);
        }
    }

    /// Loads, validates, and age-checks the newest checkpoint as of
    /// `now_slot`. Any failure means the caller must degrade, not abort.
    pub fn load_validated(
        &self,
        now_slot: usize,
        max_age_slots: usize,
    ) -> Result<Checkpoint, CheckpointError> {
        let blob = self.latest.as_ref().ok_or(CheckpointError::Missing)?;
        let ckpt = Checkpoint::decode(blob)?;
        let age_slots = now_slot.saturating_sub(ckpt.slot);
        if age_slots > max_age_slots {
            return Err(CheckpointError::Stale {
                age_slots,
                max_age_slots,
            });
        }
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::{MetricSanitizer, SanitizeConfig};

    fn sample_op(name: &str) -> OperatorMetrics {
        OperatorMetrics {
            name: name.to_string(),
            tasks: 3,
            input_rate: 120.5,
            input_rates: vec![100.0, 20.5],
            output_rate: 118.25,
            offered_load: 121.0,
            cpu_util: 0.73,
            capacity_sample: 161.071_823,
            buffer_tuples: 12.0,
            latency_estimate_secs: 0.031,
            backpressure: true,
            degraded: false,
        }
    }

    fn sample_slot() -> SlotMetrics {
        SlotMetrics {
            t: 7,
            sim_time_secs: 4800.0,
            throughput: 118.25,
            processed_tuples: 70_950.0,
            dropped_tuples: 1.5,
            cost_dollars: 0.082_5,
            pods: 6,
            source_rates: vec![120.5],
            reconfigured: true,
            pause_secs: 4.2,
            operators: vec![sample_op("src"), sample_op("agg")],
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        let mut san = MetricSanitizer::new(SanitizeConfig::default());
        let _ = san.sanitize(sample_slot());
        Checkpoint {
            version: CHECKPOINT_VERSION,
            slot: 7,
            scheme: "dragster-saddle".to_string(),
            deployment: vec![3, 3],
            scaler: Some(Json::Obj(vec![
                ("t".to_string(), json::num(8)),
                ("lambda".to_string(), json::bits_arr(&[0.25, -0.0])),
            ])),
            sanitizer: san.snapshot(),
            retry: RetrySnapshot {
                consecutive_failures: 2,
                next_attempt: 11,
            },
        }
    }

    #[test]
    fn slot_metrics_roundtrip_is_bit_exact() {
        let mut m = sample_slot();
        // include hostile float values
        m.operators[0].capacity_sample = f64::MIN_POSITIVE;
        m.operators[1].latency_estimate_secs = 1.0e-300;
        let j = encode_slot_metrics(&m);
        let text = j.render();
        let back = decode_slot_metrics(&json::parse_json(&text).expect("parse")).expect("decode");
        assert_eq!(back, m);
        assert_eq!(
            back.operators[0].capacity_sample.to_bits(),
            m.operators[0].capacity_sample.to_bits()
        );
    }

    #[test]
    fn textual_writers_match_tree_encoders_byte_for_byte() {
        // Hostile values: NaN payloads, signed zero, subnormals, control
        // characters and escapes in names, empty rate vectors.
        let mut m = sample_slot();
        m.operators[0].name = "weird \"name\"\n\t\\ \u{1} end".to_string();
        m.operators[0].capacity_sample = f64::from_bits(0x7ff8_0000_dead_beef);
        m.operators[0].input_rates = Vec::new();
        m.operators[1].latency_estimate_secs = -0.0;
        m.operators[1].buffer_tuples = f64::MIN_POSITIVE / 2.0; // subnormal
        m.source_rates = vec![f64::INFINITY, f64::NEG_INFINITY, 0.1 + 0.2];
        m.t = 0;
        // Largest exactly-representable integer: beyond 2^53 the tree
        // codec itself falls back to float notation, and pod counts are
        // bounded far below it.
        m.pods = (1usize << 53) - 1;

        let mut streamed = String::new();
        write_operator_metrics(&m.operators[0], &mut streamed);
        assert_eq!(streamed, encode_operator_metrics(&m.operators[0]).render());

        streamed.clear();
        write_slot_metrics(&m, &mut streamed);
        assert_eq!(streamed, encode_slot_metrics(&m).render());
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ckpt = sample_checkpoint();
        let blob = ckpt.encode();
        let back = Checkpoint::decode(&blob).expect("decode");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn torn_blob_is_detected() {
        let ckpt = sample_checkpoint();
        let mut store = CheckpointStore::new();
        store.write(&ckpt);
        store.corrupt_latest();
        match store.load_validated(8, 100) {
            Err(CheckpointError::Torn { .. }) => {}
            other => panic!("expected Torn, got {other:?}"),
        }
    }

    #[test]
    fn stale_checkpoint_is_rejected_by_age() {
        let ckpt = sample_checkpoint(); // slot 7
        let mut store = CheckpointStore::new();
        store.write(&ckpt);
        assert!(store.load_validated(10, 8).is_ok()); // age 3 ≤ 8
        match store.load_validated(20, 8) {
            Err(CheckpointError::Stale {
                age_slots: 13,
                max_age_slots: 8,
            }) => {}
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn empty_store_reports_missing() {
        let store = CheckpointStore::new();
        assert_eq!(store.load_validated(0, 10), Err(CheckpointError::Missing));
    }

    #[test]
    fn version_mismatch_is_malformed() {
        let mut ckpt = sample_checkpoint();
        ckpt.version = 99;
        let blob = ckpt.encode();
        match Checkpoint::decode(&blob) {
            Err(CheckpointError::Malformed { detail }) => {
                assert!(detail.contains("version"), "detail: {detail}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn seal_unseal_roundtrip_and_tamper_detection() {
        let body = "{\"a\":1}";
        let blob = seal(body);
        assert_eq!(unseal(&blob).expect("unseal"), body);
        let tampered = blob.replace("1", "2");
        assert!(unseal(&tampered).is_err());
        assert!(unseal("nonsense-without-frame").is_err());
    }
}
