//! The Kubernetes-side model: deployments (tasks → pods), resource budget,
//! and dollar-cost metering.

use serde::{Deserialize, Serialize};

/// A resource configuration: number of parallel tasks per operator, in
/// capacity-index order. Each task occupies one TaskManager pod with one
/// slot (the paper's 1 CPU / 2 GB pods), so `total_pods = Σ tasks`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Deployment {
    pub tasks: Vec<usize>,
}

impl Deployment {
    /// Deployment with the same task count for every operator.
    pub fn uniform(n_operators: usize, tasks: usize) -> Deployment {
        Deployment {
            tasks: vec![tasks; n_operators],
        }
    }

    /// Total pods consumed.
    pub fn total_pods(&self) -> usize {
        self.tasks.iter().sum()
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if there are no operators (degenerate).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Clamp every operator's tasks into `[1, max_tasks]`.
    pub fn clamped(&self, max_tasks: usize) -> Deployment {
        Deployment {
            tasks: self.tasks.iter().map(|&t| t.clamp(1, max_tasks)).collect(),
        }
    }

    /// True when the deployment respects a total-pod budget.
    pub fn within_budget(&self, budget_pods: Option<usize>) -> bool {
        budget_pods.is_none_or(|b| self.total_pods() <= b)
    }

    /// The per-operator configuration as the `f64` feature vector handed to
    /// the GP (`x_i` of the paper — here one-dimensional: the task count).
    pub fn feature(&self, operator: usize) -> Vec<f64> {
        vec![crate::convert::usize_to_f64(
            self.tasks.get(operator).copied().unwrap_or(1),
        )]
    }
}

impl std::fmt::Display for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}]",
            self.tasks
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// Cluster-level configuration: pod pricing, budget, reconfiguration pause,
/// and the per-operator task range.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Dollars per pod-hour (every task = 1 pod = 1 slot).
    pub cost_per_pod_hour: f64,
    /// Hard cap on Σ tasks (the paper's budget `B`, Eq. 9d). `None` = no
    /// budget experiment.
    pub budget_pods: Option<usize>,
    /// Checkpoint stop-and-resume pause when the deployment changes
    /// (Section 3.1: ~30 s).
    pub reconfig_pause_secs: f64,
    /// Maximum tasks per operator (the paper sweeps 1–10).
    pub max_tasks_per_operator: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            // Chosen so the paper's "1.6 $/hour" tight budget (Fig. 4d–f)
            // maps to 10 pods out of a 10+10 WordCount grid: 0.16 $/pod·h.
            cost_per_pod_hour: 0.16,
            budget_pods: None,
            reconfig_pause_secs: 30.0,
            max_tasks_per_operator: 10,
        }
    }
}

impl ClusterConfig {
    /// The paper's primary deployment: Flink 1.10 on Kubernetes —
    /// checkpoint stop-and-resume costs ~30 s, decisions every 10 min.
    pub fn flink_on_k8s() -> ClusterConfig {
        ClusterConfig::default()
    }

    /// Storm/Heron-style actuation (Section 3.2): `rebalance` adjusts Bolt
    /// executor counts without a full checkpoint restore — a much shorter
    /// pause.
    pub fn storm_rebalance() -> ClusterConfig {
        ClusterConfig {
            reconfig_pause_secs: 10.0,
            ..Default::default()
        }
    }

    /// Cameo-style fine-grained reconfiguration (Section 3.1: "Dragster
    /// can also take advantage of a faster, more dynamic reconfiguration
    /// mechanism, such as Cameo, to perform at shorter time intervals").
    pub fn cameo() -> ClusterConfig {
        ClusterConfig {
            reconfig_pause_secs: 2.0,
            ..Default::default()
        }
    }

    /// Convert a dollars-per-hour budget into a pod budget under this
    /// price.
    pub fn pods_for_hourly_budget(&self, dollars_per_hour: f64) -> usize {
        crate::convert::f64_to_usize_saturating((dollars_per_hour / self.cost_per_pod_hour).floor())
    }

    /// Enable a budget expressed in dollars per hour (the paper's 1.6 $/h).
    pub fn with_hourly_budget(mut self, dollars_per_hour: f64) -> ClusterConfig {
        self.budget_pods = Some(self.pods_for_hourly_budget(dollars_per_hour));
        self
    }
}

/// Accumulates pod-seconds into dollars.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostMeter {
    pod_seconds: f64,
    cost_per_pod_hour: f64,
}

impl CostMeter {
    pub fn new(cost_per_pod_hour: f64) -> CostMeter {
        CostMeter {
            pod_seconds: 0.0,
            cost_per_pod_hour,
        }
    }

    /// Meter `pods` running for `secs` seconds.
    pub fn charge(&mut self, pods: usize, secs: f64) {
        self.pod_seconds += pods as f64 * secs;
    }

    /// Total dollars so far.
    pub fn dollars(&self) -> f64 {
        self.pod_seconds / 3600.0 * self.cost_per_pod_hour
    }

    /// Total pod-hours so far.
    pub fn pod_hours(&self) -> f64 {
        self.pod_seconds / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_pods_and_display() {
        let d = Deployment { tasks: vec![3, 7] };
        assert_eq!(d.total_pods(), 10);
        assert_eq!(d.len(), 2);
        assert_eq!(format!("{d}"), "[3,7]");
    }

    #[test]
    fn uniform_builder() {
        let d = Deployment::uniform(4, 2);
        assert_eq!(d.tasks, vec![2, 2, 2, 2]);
    }

    #[test]
    fn clamp_respects_bounds() {
        let d = Deployment {
            tasks: vec![0, 5, 99],
        };
        assert_eq!(d.clamped(10).tasks, vec![1, 5, 10]);
    }

    #[test]
    fn budget_check() {
        let d = Deployment { tasks: vec![4, 4] };
        assert!(d.within_budget(None));
        assert!(d.within_budget(Some(8)));
        assert!(!d.within_budget(Some(7)));
    }

    #[test]
    fn feature_vector() {
        let d = Deployment { tasks: vec![3, 7] };
        assert_eq!(d.feature(1), vec![7.0]);
    }

    #[test]
    fn hourly_budget_conversion() {
        let cfg = ClusterConfig::default(); // 0.16 $/pod·h
        assert_eq!(cfg.pods_for_hourly_budget(1.6), 10);
        let with = cfg.with_hourly_budget(1.6);
        assert_eq!(with.budget_pods, Some(10));
    }

    #[test]
    fn cost_meter_accumulates() {
        let mut m = CostMeter::new(0.16);
        m.charge(10, 3600.0);
        assert!((m.dollars() - 1.6).abs() < 1e-12);
        assert!((m.pod_hours() - 10.0).abs() < 1e-12);
        m.charge(5, 1800.0);
        assert!((m.dollars() - (1.6 + 5.0 * 0.5 * 0.16)).abs() < 1e-12);
    }
}
