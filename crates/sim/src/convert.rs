//! Checked numeric conversions. These are the only sanctioned float↔int
//! crossings in the simulator: `expr as usize` elsewhere is rejected by
//! `dragster-lint` (L4) because a silent truncation of a slot count or a
//! percentile index corrupts results without failing any test. This
//! module is the single audited exception (see `lint.toml`).

/// Converts a float to `usize`, saturating instead of truncating into
/// nonsense: NaN and negatives map to 0, values beyond `usize::MAX` map
/// to `usize::MAX`. The fractional part is dropped (floor), so callers
/// that want rounding apply `.round()`/`.ceil()` first.
#[inline]
pub fn f64_to_usize_saturating(x: f64) -> usize {
    if x.is_nan() || x <= 0.0 {
        0
    } else if x >= usize::MAX as f64 {
        usize::MAX
    } else {
        x as usize
    }
}

/// Converts a count to `f64`. Exact for counts below 2^53 — which covers
/// every task/slot/pod count the simulator can represent — and documents
/// the intent at the call site better than a bare `as f64`.
#[inline]
pub fn usize_to_f64(n: usize) -> f64 {
    n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_instead_of_wrapping() {
        assert_eq!(f64_to_usize_saturating(f64::NAN), 0);
        assert_eq!(f64_to_usize_saturating(-3.7), 0);
        assert_eq!(f64_to_usize_saturating(0.0), 0);
        assert_eq!(f64_to_usize_saturating(41.9), 41);
        assert_eq!(f64_to_usize_saturating(f64::INFINITY), usize::MAX);
        assert_eq!(f64_to_usize_saturating(1e300), usize::MAX);
    }

    #[test]
    fn usize_to_f64_is_exact_in_range() {
        assert_eq!(usize_to_f64(0), 0.0);
        assert_eq!(usize_to_f64(10), 10.0);
        assert_eq!(usize_to_f64(1 << 52), (1u64 << 52) as f64);
    }
}
