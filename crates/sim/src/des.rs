//! A discrete-event, batch-of-tuples simulation engine.
//!
//! The fluid engine integrates rates; this engine moves explicit tuple
//! batches through FIFO operator queues with capacity-determined service
//! times. It exists to *cross-validate* the fluid model: for the same
//! application, deployment and offered load, the two must agree on
//! steady-state throughput and on where backlog accumulates
//! (`tests/fluid_vs_des.rs` in the workspace root asserts this).
//!
//! Scope notes: `Linear` throughput functions are exact here (tuple counts
//! transform linearly); `WeightedMin` is modeled with matching queues (a
//! join emits when both sides have matchable tuples); `Tanh` is
//! rate-dependent and approximated per batch using the batch's arrival
//! rate. The paper's experiments use linear/min operators, which are exact.

use crate::capacity::Application;
use crate::cluster::Deployment;
use crate::error::SimError;
use crate::faults::{FaultPlan, FaultState};
use crate::noise::FailureModel;
use dragster_dag::{ComponentKind, ThroughputFn};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: a batch of tuples arriving at a component.
#[derive(Debug)]
struct Event {
    time: f64,
    target: usize,
    /// Position in the target's predecessor list the batch arrives on.
    pred_slot: usize,
    tuples: f64,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap on time
        other.time.total_cmp(&self.time)
    }
}

/// Result of a DES run.
#[derive(Clone, Debug, PartialEq)]
pub struct DesReport {
    /// Tuples delivered to the sink in the measurement window.
    pub sink_tuples: f64,
    /// Mean sink ingest rate over the measurement window (tuples/sec).
    pub throughput: f64,
    /// Backlog (queued tuples awaiting service) per operator at end.
    pub backlog: Vec<f64>,
    /// Events processed (diagnostic).
    pub events: usize,
}

/// Discrete-event simulator for a fixed deployment and constant source
/// rates.
pub struct DesSim {
    app: Application,
    deployment: Deployment,
    /// Batch emission interval for sources, seconds.
    batch_interval: f64,
    /// `routing[id][e]`: predecessor slot that flow along `succs[e]` of
    /// component `id` lands in at the successor (precomputed).
    routing: Vec<Vec<usize>>,
    /// Capacity index per component id; only meaningful for operators
    /// (validated at construction), `usize::MAX` elsewhere and never read.
    cap_of: Vec<usize>,
    /// Optional chaos-layer disturbances (capacity faults only — the DES
    /// has no metrics pipeline, so metric/reconfig faults do not apply).
    faults: Option<DesFaults>,
}

/// Disturbance configuration for a DES run: the same [`FaultPlan`] the
/// fluid engine consumes, realized through the same seeded fault stream so
/// both engines see identical per-slot capacity multipliers.
#[derive(Clone, Debug)]
struct DesFaults {
    plan: FaultPlan,
    legacy: Option<FailureModel>,
    seed: u64,
    /// Decision-slot length in seconds — multipliers are piecewise-constant
    /// per slot window, mirroring the fluid engine's per-slot application.
    slot_secs: f64,
}

impl DesSim {
    /// Create a DES run configuration. `batch_interval` controls
    /// granularity (e.g. 1.0 s — smaller is finer but slower).
    ///
    /// # Errors
    /// [`SimError::DeploymentArity`] on an arity mismatch and
    /// [`SimError::Dag`] if the topology is structurally inconsistent.
    ///
    /// # Panics
    /// If `batch_interval <= 0` — a configuration bug, not a data error.
    pub fn new(
        app: Application,
        deployment: Deployment,
        batch_interval: f64,
    ) -> Result<DesSim, SimError> {
        assert!(batch_interval > 0.0);
        if deployment.len() != app.n_operators() {
            return Err(SimError::DeploymentArity {
                expected: app.n_operators(),
                got: deployment.len(),
            });
        }
        let routing = app.topology.edge_routing()?;
        let mut cap_of = vec![usize::MAX; app.topology.components().len()];
        for (i, c) in app.topology.components().iter().enumerate() {
            if c.kind == ComponentKind::Operator {
                cap_of[i] = c.capacity_index.ok_or_else(|| {
                    dragster_dag::DagError::MissingCapacityIndex {
                        component: c.name.clone(),
                    }
                })?;
            }
        }
        Ok(DesSim {
            app,
            deployment,
            batch_interval,
            routing,
            cap_of,
            faults: None,
        })
    }

    /// Attach chaos-layer disturbances. Capacity faults (crashes,
    /// stragglers, the legacy [`FailureModel`]) are realized through the
    /// same seeded fault stream as
    /// [`FluidSim::with_faults`](crate::fluid::FluidSim::with_faults), so a
    /// fluid run and a DES run with the same `(plan, legacy, seed,
    /// slot_secs)` experience identical per-slot capacity multipliers —
    /// this is what lets `tests/fluid_vs_des.rs` cross-validate faulted
    /// runs.
    ///
    /// # Panics
    /// If `slot_secs <= 0` — a configuration bug, not a data error.
    #[must_use]
    pub fn with_disturbances(
        mut self,
        plan: FaultPlan,
        legacy: Option<FailureModel>,
        seed: u64,
        slot_secs: f64,
    ) -> DesSim {
        assert!(slot_secs > 0.0);
        self.faults = Some(DesFaults {
            plan,
            legacy,
            seed,
            slot_secs,
        });
        self
    }

    /// Run for `duration_secs` with constant `source_rates`, measuring the
    /// sink over `[warmup_secs, duration_secs]`.
    pub fn run(&self, source_rates: &[f64], duration_secs: f64, warmup_secs: f64) -> DesReport {
        let topo = &self.app.topology;
        assert_eq!(source_rates.len(), topo.n_sources());
        let caps = self.app.true_capacities(&self.deployment.tasks);
        // Precompute the per-slot-window capacity multipliers by replaying
        // the shared fault stream (identical to the fluid engine's draws).
        let fault_windows: Option<(Vec<Vec<f64>>, f64)> = self.faults.as_ref().map(|f| {
            let n_windows =
                crate::convert::f64_to_usize_saturating((duration_secs / f.slot_secs).ceil()) + 1;
            let mut state = FaultState::new(f.plan.clone(), f.legacy, f.seed);
            let mults = (0..n_windows)
                .map(|t| {
                    state
                        .begin_slot(t, self.app.n_operators())
                        .capacity_multiplier
                })
                .collect();
            (mults, f.slot_secs)
        });
        let cap_at = |ci: usize, time: f64| -> f64 {
            match &fault_windows {
                Some((mults, slot_secs)) => {
                    let w = crate::convert::f64_to_usize_saturating(time / slot_secs)
                        .min(mults.len().saturating_sub(1));
                    // floor keeps a fully-crashed operator serviceable at a
                    // negligible rate instead of dividing by zero
                    (caps[ci] * mults[w][ci]).max(1e-9)
                }
                None => caps[ci],
            }
        };

        let n = topo.components().len();
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        // Per-operator server state: next time the (aggregated) server is free.
        let mut busy_until = vec![0.0_f64; n];
        // Per-component, per-pred matched-queue storage for WeightedMin.
        let mut match_queues: Vec<Vec<f64>> = topo
            .components()
            .iter()
            .map(|c| vec![0.0; c.preds.len()])
            .collect();
        // Queued-but-unserved tuples per operator (backlog metric).
        let mut queued = vec![0.0_f64; n];

        // Seed source emissions.
        for (k, id) in topo.source_ids().iter().enumerate() {
            let c = topo.component(*id);
            let mut t = 0.0;
            while t < duration_secs {
                for (e, succ) in c.succs.iter().enumerate() {
                    let tuples = source_rates[k] * c.alpha[e] * self.batch_interval;
                    if tuples > 0.0 {
                        heap.push(Event {
                            time: t,
                            target: succ.0,
                            pred_slot: self.routing[id.0][e],
                            tuples,
                        });
                    }
                }
                t += self.batch_interval;
            }
        }

        let mut sink_tuples = 0.0;
        let mut events = 0usize;
        let sink = topo.sink().0;

        while let Some(ev) = heap.pop() {
            events += 1;
            if ev.time > duration_secs {
                break;
            }
            if ev.target == sink {
                if ev.time >= warmup_secs {
                    sink_tuples += ev.tuples;
                }
                continue;
            }
            let c = topo.component(dragster_dag::ComponentId(ev.target));
            debug_assert_eq!(c.kind, ComponentKind::Operator);
            let ci = self.cap_of[ev.target];
            let cap = cap_at(ci, ev.time);

            // Determine output tuples per successor edge from this batch.
            match_queues[ev.target][ev.pred_slot] += ev.tuples;
            let n_preds = c.preds.len();
            let mut outs: Vec<f64> = Vec::with_capacity(c.succs.len());
            // For each edge's h, compute what can be emitted now.
            // Linear: w · incoming batch vector — consume everything.
            // WeightedMin: limited by the scarcest weighted queue.
            let mut consumed = vec![0.0_f64; n_preds];
            for h in &c.h {
                match h {
                    ThroughputFn::Linear { weights } => {
                        let mut o = 0.0;
                        for p in 0..n_preds {
                            o += weights[p] * match_queues[ev.target][p];
                        }
                        outs.push(o);
                        for p in 0..n_preds {
                            consumed[p] = consumed[p].max(match_queues[ev.target][p]);
                        }
                    }
                    ThroughputFn::WeightedMin { weights } => {
                        let o = (0..n_preds)
                            .map(|p| weights[p] * match_queues[ev.target][p])
                            .fold(f64::INFINITY, f64::min);
                        outs.push(o);
                        // consume proportionally to what the min used
                        for p in 0..n_preds {
                            if weights[p] > 0.0 {
                                consumed[p] = consumed[p].max(o / weights[p]);
                            }
                        }
                    }
                    ThroughputFn::Tanh { scale, weights } => {
                        // rate-dependent: use the batch's rate estimate
                        let dot: f64 = (0..n_preds)
                            .map(|p| {
                                weights[p] * (match_queues[ev.target][p] / self.batch_interval)
                            })
                            .sum();
                        let out_rate = scale * dot.tanh();
                        outs.push(out_rate * self.batch_interval);
                        for p in 0..n_preds {
                            consumed[p] = consumed[p].max(match_queues[ev.target][p]);
                        }
                    }
                }
            }
            for p in 0..n_preds {
                match_queues[ev.target][p] -= consumed[p].min(match_queues[ev.target][p]);
            }

            let total_out: f64 = outs.iter().sum();
            if total_out <= 0.0 {
                continue;
            }
            // Service: the aggregated operator server processes the work at
            // its capacity; FIFO via busy_until.
            let start = ev.time.max(busy_until[ev.target]);
            let service = total_out / cap;
            let done = start + service;
            busy_until[ev.target] = done;
            queued[ev.target] = (busy_until[ev.target] - ev.time).max(0.0) * cap;

            if done > duration_secs {
                continue;
            }
            for (e, succ) in c.succs.iter().enumerate() {
                // Per-edge α capacity split mirrors Eq. 4: the edge can carry
                // at most α share of the operator's service.
                let flow = outs[e].min(c.alpha[e] * cap * service.max(1e-12) * 2.0);
                heap.push(Event {
                    time: done,
                    target: succ.0,
                    pred_slot: self.routing[ev.target][e],
                    tuples: flow,
                });
            }
        }

        let window = (duration_secs - warmup_secs).max(1e-9);
        let backlog: Vec<f64> = self
            .app
            .topology
            .operator_ids()
            .iter()
            .map(|id| queued[id.0])
            .collect();
        DesReport {
            sink_tuples,
            throughput: sink_tuples / window,
            backlog,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityModel;
    use dragster_dag::TopologyBuilder;

    fn chain_app(per_task: f64) -> Application {
        let topo = TopologyBuilder::new()
            .source("s")
            .operator("a")
            .operator("b")
            .sink("k")
            .edge("s", "a")
            .edge("a", "b")
            .edge("b", "k")
            .build()
            .unwrap();
        Application::new(
            topo,
            vec![
                CapacityModel::Linear { per_task },
                CapacityModel::Linear { per_task },
            ],
        )
        .unwrap()
    }

    #[test]
    fn underloaded_chain_delivers_offered_rate() {
        let app = chain_app(100.0);
        let des = DesSim::new(app, Deployment::uniform(2, 5), 1.0).unwrap();
        let r = des.run(&[200.0], 600.0, 100.0);
        assert!(
            (r.throughput - 200.0).abs() / 200.0 < 0.05,
            "{}",
            r.throughput
        );
        assert!(r.backlog.iter().all(|&b| b < 500.0));
    }

    #[test]
    fn overloaded_chain_capped_at_capacity() {
        let app = chain_app(100.0);
        let des = DesSim::new(app, Deployment::uniform(2, 1), 1.0).unwrap(); // cap 100
        let r = des.run(&[300.0], 600.0, 100.0);
        assert!(
            (r.throughput - 100.0).abs() / 100.0 < 0.08,
            "{}",
            r.throughput
        );
        // backlog accumulates at the first operator
        assert!(r.backlog[0] > 1e4, "{:?}", r.backlog);
    }

    #[test]
    fn selectivity_respected() {
        let topo = TopologyBuilder::new()
            .source("s")
            .operator("filter")
            .sink("k")
            .edge("s", "filter")
            .edge_with(
                "filter",
                "k",
                ThroughputFn::Linear {
                    weights: vec![0.25],
                },
                1.0,
            )
            .build()
            .unwrap();
        let app = Application::new(topo, vec![CapacityModel::Linear { per_task: 1000.0 }]).unwrap();
        let des = DesSim::new(app, Deployment::uniform(1, 1), 1.0).unwrap();
        let r = des.run(&[400.0], 400.0, 50.0);
        assert!(
            (r.throughput - 100.0).abs() / 100.0 < 0.05,
            "{}",
            r.throughput
        );
    }

    #[test]
    fn join_tracks_slower_side() {
        let topo = TopologyBuilder::new()
            .source("l")
            .source("r")
            .operator("join")
            .sink("k")
            .edge("l", "join")
            .edge("r", "join")
            .edge_with(
                "join",
                "k",
                ThroughputFn::WeightedMin {
                    weights: vec![1.0, 1.0],
                },
                1.0,
            )
            .build()
            .unwrap();
        let app = Application::new(topo, vec![CapacityModel::Linear { per_task: 1000.0 }]).unwrap();
        let des = DesSim::new(app, Deployment::uniform(1, 1), 1.0).unwrap();
        let r = des.run(&[300.0, 80.0], 400.0, 50.0);
        assert!(
            (r.throughput - 80.0).abs() / 80.0 < 0.08,
            "{}",
            r.throughput
        );
    }

    #[test]
    fn diamond_fan_in_sums_branches() {
        let topo = TopologyBuilder::new()
            .source("s")
            .operator("split")
            .operator("l")
            .operator("r")
            .operator("merge")
            .sink("k")
            .edge("s", "split")
            .edge_with(
                "split",
                "l",
                ThroughputFn::Linear { weights: vec![0.5] },
                0.5,
            )
            .edge_with(
                "split",
                "r",
                ThroughputFn::Linear { weights: vec![0.5] },
                0.5,
            )
            .edge("l", "merge")
            .edge("r", "merge")
            .edge("merge", "k")
            .build()
            .unwrap();
        let app =
            Application::new(topo, vec![CapacityModel::Linear { per_task: 1000.0 }; 4]).unwrap();
        let des = DesSim::new(app, Deployment::uniform(4, 1), 1.0).unwrap();
        let r = des.run(&[400.0], 400.0, 50.0);
        assert!(
            (r.throughput - 400.0).abs() / 400.0 < 0.06,
            "{}",
            r.throughput
        );
    }

    #[test]
    fn tanh_stage_saturates_in_des() {
        let topo = TopologyBuilder::new()
            .source("s")
            .operator("sat")
            .sink("k")
            .edge("s", "sat")
            .edge_with(
                "sat",
                "k",
                ThroughputFn::Tanh {
                    scale: 120.0,
                    weights: vec![0.02],
                },
                1.0,
            )
            .build()
            .unwrap();
        let app = Application::new(topo, vec![CapacityModel::Linear { per_task: 1e4 }]).unwrap();
        let des = DesSim::new(app.clone(), Deployment::uniform(1, 5), 1.0).unwrap();
        // high offered rate: output approaches the tanh scale
        let r = des.run(&[1000.0], 300.0, 50.0);
        assert!(r.throughput <= 121.0, "{}", r.throughput);
        assert!(r.throughput > 100.0, "{}", r.throughput);
        // matches the analytic model
        let analytic = app.ideal_throughput(&[1000.0], &[5]).unwrap();
        assert!((r.throughput - analytic).abs() / analytic < 0.1);
    }

    #[test]
    fn inert_fault_plan_leaves_report_identical() {
        let app = chain_app(100.0);
        let clean = DesSim::new(app.clone(), Deployment::uniform(2, 2), 1.0).unwrap();
        let inert = DesSim::new(app, Deployment::uniform(2, 2), 1.0)
            .unwrap()
            .with_disturbances(FaultPlan::none(), None, 42, 600.0);
        let a = clean.run(&[150.0], 600.0, 100.0);
        let b = inert.run(&[150.0], 600.0, 100.0);
        assert_eq!(a, b);
    }

    #[test]
    fn straggler_window_dents_throughput() {
        use crate::faults::{FaultKind, ScriptedFault};
        let app = chain_app(100.0);
        // operator 0 loses half its capacity for windows 1–2 of a 3-window run
        let plan = FaultPlan::none().with(ScriptedFault {
            slot: 1,
            kind: FaultKind::Straggler,
            operator: Some(0),
            severity: 0.5,
            duration_slots: 2,
        });
        let clean = DesSim::new(app.clone(), Deployment::uniform(2, 2), 1.0).unwrap();
        let faulted = DesSim::new(app, Deployment::uniform(2, 2), 1.0)
            .unwrap()
            .with_disturbances(plan, None, 42, 600.0);
        // offered 180 < cap 200, but the straggler window caps op 0 at 100
        let a = clean.run(&[180.0], 1800.0, 100.0);
        let b = faulted.run(&[180.0], 1800.0, 100.0);
        assert!(
            b.throughput < 0.9 * a.throughput,
            "faulted {} vs clean {}",
            b.throughput,
            a.throughput
        );
        assert!(b.throughput.is_finite() && b.throughput > 0.0);
    }

    #[test]
    fn full_crash_does_not_divide_by_zero() {
        use crate::faults::{FaultKind, ScriptedFault};
        let app = chain_app(100.0);
        let plan = FaultPlan::none().with(ScriptedFault {
            slot: 0,
            kind: FaultKind::PodCrash,
            operator: Some(0),
            severity: 1.0,
            duration_slots: 1,
        });
        let des = DesSim::new(app, Deployment::uniform(2, 1), 1.0)
            .unwrap()
            .with_disturbances(plan, None, 7, 600.0);
        let r = des.run(&[100.0], 600.0, 0.0);
        assert!(r.throughput.is_finite());
        assert!(r.backlog.iter().all(|b| b.is_finite()));
    }

    #[test]
    fn zero_warmup_counts_everything() {
        let app = chain_app(100.0);
        let des = DesSim::new(app, Deployment::uniform(2, 5), 1.0).unwrap();
        let r = des.run(&[100.0], 200.0, 0.0);
        // ramp-up dilutes slightly but all tuples count
        assert!(r.sink_tuples > 100.0 * 150.0);
    }

    #[test]
    fn events_are_processed_in_time_order() {
        // smoke test that the heap ordering is min-time: a long run
        // completes without panicking and throughput is finite
        let app = chain_app(50.0);
        let des = DesSim::new(app, Deployment::uniform(2, 2), 0.5).unwrap();
        let r = des.run(&[120.0], 300.0, 30.0);
        assert!(r.throughput.is_finite());
        assert!(r.events > 100);
    }
}
