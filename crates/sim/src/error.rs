//! Structured errors for the simulator: construction, reconfiguration,
//! and the experiment loop.
//!
//! The harness drives hundreds of decision slots per experiment; a panic
//! anywhere in that loop loses the whole trace. Every failure — invalid
//! application, infeasible deployment, DAG inconsistency, or a policy
//! (autoscaler) error — is reported as a [`SimError`] instead.

use dragster_dag::DagError;
use std::fmt;

/// Errors produced by simulator construction, reconfiguration, and the
/// experiment harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The application's topology is structurally inconsistent.
    Dag(DagError),
    /// Capacity models and topology disagree, or a model fails validation.
    InvalidApplication { reason: String },
    /// A deployment's length doesn't match the operator count.
    DeploymentArity { expected: usize, got: usize },
    /// A deployment exceeds the cluster pod budget.
    BudgetExceeded { total_pods: usize, budget: usize },
    /// An autoscaling policy failed to produce a decision.
    Policy { scheme: String, reason: String },
    /// A reconfiguration (checkpoint stop-and-resume) attempt failed —
    /// an injected fault, not a validation error. The deployment is left
    /// unchanged; the harness retries with exponential backoff instead of
    /// aborting the run.
    ReconfigFailed { slot: usize },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Dag(e) => write!(f, "topology error: {e}"),
            SimError::InvalidApplication { reason } => {
                write!(f, "invalid application: {reason}")
            }
            SimError::DeploymentArity { expected, got } => {
                write!(f, "deployment has {got} entries for {expected} operators")
            }
            SimError::BudgetExceeded { total_pods, budget } => {
                write!(f, "deployment needs {total_pods} pods, budget is {budget}")
            }
            SimError::Policy { scheme, reason } => {
                write!(f, "policy {scheme:?} failed: {reason}")
            }
            SimError::ReconfigFailed { slot } => {
                write!(
                    f,
                    "reconfiguration failed at slot {slot} (checkpoint-restore fault)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Dag(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DagError> for SimError {
    fn from(e: DagError) -> SimError {
        SimError::Dag(e)
    }
}

impl From<dragster_dag::TopologyError> for SimError {
    fn from(e: dragster_dag::TopologyError) -> SimError {
        SimError::Dag(DagError::Topology(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: SimError = DagError::UnreachableSink.into();
        assert!(e.to_string().contains("sink"));
        let e = SimError::BudgetExceeded {
            total_pods: 12,
            budget: 10,
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("10"));
    }
}
