//! Deterministic fault injection — the chaos layer.
//!
//! The paper claims sublinear regret under "dynamic cloud noises"
//! (Section 1); this module produces the *heavier* disturbances a real
//! Flink-on-Kubernetes deployment suffers, beyond the Gaussian noise of
//! [`noise`](crate::noise):
//!
//! * **pod crashes** with multi-slot recovery windows — an operator loses a
//!   fraction of its capacity and regains it linearly as Kubernetes
//!   reschedules the pods;
//! * **straggler slots** — a cluster-wide slowdown (hot node, noisy
//!   neighbour) hitting every operator for a few slots;
//! * **reconfiguration faults** — the checkpoint stop-and-resume either
//!   fails outright (surfaced as
//!   [`SimError::ReconfigFailed`](crate::error::SimError::ReconfigFailed))
//!   or takes a multiple of the nominal pause;
//! * **metric faults** — the Job-Monitor scrape drops out (NaN reading),
//!   serves a stale previous-slot snapshot, or returns a corrupted
//!   capacity sample.
//!
//! A [`FaultPlan`] combines **scripted** events (fire at an exact slot —
//! reproducible recovery experiments) with **stochastic** per-slot rates.
//! All randomness is drawn from a *dedicated* RNG stream derived from the
//! experiment seed ([`FaultState::new`]), separate from the engine's noise
//! stream — so a plan whose probabilities are all zero leaves a run
//! bit-identical to one with no plan at all, and the fluid and DES engines
//! draw the *same* fault realization for the same seed (the cross-engine
//! agreement tests in `tests/fluid_vs_des.rs` depend on this).
//!
//! Every fault that bites is recorded as a [`FaultEvent`] and surfaces in
//! the experiment [`Trace`](crate::harness::Trace).

use crate::noise::{FailureModel, Rng};
use serde::{Deserialize, Serialize};

/// XOR salt deriving the dedicated fault stream from the experiment seed.
const FAULT_STREAM_SALT: u64 = 0xFA17_0000_D15C_0BAD;

/// The fault classes the chaos layer can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// An operator loses capacity, recovering linearly over the window.
    PodCrash,
    /// Every operator runs slowed for the window (hot node / noisy
    /// neighbour).
    Straggler,
    /// The next checkpoint stop-and-resume fails; the deployment is held.
    ReconfigFail,
    /// The next checkpoint stop-and-resume pause is multiplied.
    ReconfigSlow,
    /// The Metrics-Server scrape fails: CPU and capacity read NaN.
    MetricDropout,
    /// The monitor re-serves the previous slot's snapshot.
    MetricStale,
    /// The capacity sample is corrupted (wild multiple, or NaN).
    MetricCorrupt,
    /// The *controller process* dies at the top of the slot, losing all
    /// in-memory learner state (GP dataset, duals, UCB statistics, RNG
    /// positions). Interpreted by the recovery harness
    /// ([`ControllerFaultDriver`]), not by the engines — the data plane
    /// keeps running while the control plane restarts.
    ControllerCrash,
    /// The latest checkpoint blob is torn/corrupted on stable storage;
    /// its checksum will fail validation at the next restore.
    CheckpointCorrupt,
    /// Checkpoint writes are suppressed for the window, so the newest
    /// surviving checkpoint ages past the staleness bound.
    CheckpointStale,
}

/// A fault scheduled at an exact slot — the reproducible half of a plan.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScriptedFault {
    /// Decision slot (0-based) at which the fault fires.
    pub slot: usize,
    pub kind: FaultKind,
    /// Target operator (capacity index). `None` targets all operators for
    /// per-operator kinds; ignored for `Straggler` and reconfiguration
    /// kinds, which are application-wide.
    pub operator: Option<usize>,
    /// Kind-specific magnitude: capacity fraction lost (`PodCrash`,
    /// `Straggler`, in `[0, 1]`), pause multiplier (`ReconfigSlow`), or
    /// capacity-sample multiplier (`MetricCorrupt`; `0.0` injects NaN).
    pub severity: f64,
    /// Slots the fault persists (recovery window for crashes/stragglers,
    /// repeat count for metric and reconfiguration faults). Clamped to
    /// at least 1.
    pub duration_slots: usize,
}

/// Per-slot probabilities for the stochastic half of a plan. All
/// probabilities default to zero — a default plan injects nothing.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Per-operator, per-slot crash probability.
    pub pod_crash_prob: f64,
    /// Capacity fraction lost at the moment of a stochastic crash.
    pub crash_capacity_loss: f64,
    /// Slots a stochastic crash takes to recover (linear ramp).
    pub crash_recovery_slots: usize,
    /// Per-slot probability of a cluster-wide straggler slot.
    pub straggler_prob: f64,
    /// Capacity fraction lost during a straggler slot.
    pub straggler_loss: f64,
    /// Per-slot probability the next reconfiguration fails.
    pub reconfig_fail_prob: f64,
    /// Per-slot probability the next reconfiguration is slowed.
    pub reconfig_slow_prob: f64,
    /// Pause multiplier for slowed reconfigurations.
    pub reconfig_slow_factor: f64,
    /// Per-operator, per-slot metric-dropout probability.
    pub metric_dropout_prob: f64,
    /// Per-operator, per-slot stale-snapshot probability.
    pub metric_stale_prob: f64,
    /// Per-operator, per-slot capacity-corruption probability.
    pub metric_corrupt_prob: f64,
    /// Capacity-sample multiplier for corrupted readings (`0.0` = NaN).
    pub metric_corrupt_factor: f64,
    /// Per-slot probability the controller process crashes at the top of
    /// the slot. Drawn on the *controller* fault stream
    /// ([`ControllerFaultDriver`]), never on the engine stream, so
    /// enabling it cannot shift the data-plane fault realization.
    pub controller_crash_prob: f64,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            pod_crash_prob: 0.0,
            crash_capacity_loss: 1.0,
            crash_recovery_slots: 3,
            straggler_prob: 0.0,
            straggler_loss: 0.5,
            reconfig_fail_prob: 0.0,
            reconfig_slow_prob: 0.0,
            reconfig_slow_factor: 3.0,
            metric_dropout_prob: 0.0,
            metric_stale_prob: 0.0,
            metric_corrupt_prob: 0.0,
            metric_corrupt_factor: 0.0,
            controller_crash_prob: 0.0,
        }
    }
}

/// A complete, seed-reproducible fault schedule: scripted events plus
/// stochastic rates.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub scripted: Vec<ScriptedFault>,
    pub rates: FaultRates,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when neither scripted events nor stochastic rates can fire.
    pub fn is_inert(&self) -> bool {
        let r = &self.rates;
        self.scripted.is_empty()
            && r.pod_crash_prob == 0.0
            && r.straggler_prob == 0.0
            && r.reconfig_fail_prob == 0.0
            && r.reconfig_slow_prob == 0.0
            && r.metric_dropout_prob == 0.0
            && r.metric_stale_prob == 0.0
            && r.metric_corrupt_prob == 0.0
            && r.controller_crash_prob == 0.0
    }

    /// Add a scripted fault (builder style).
    pub fn with(mut self, fault: ScriptedFault) -> FaultPlan {
        self.scripted.push(fault);
        self
    }
}

/// One fault that actually bit, recorded into the experiment trace.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Slot at which the fault took effect.
    pub slot: usize,
    pub kind: FaultKind,
    /// Target operator, if the fault is per-operator.
    pub operator: Option<usize>,
    /// Kind-specific magnitude (see [`ScriptedFault::severity`]).
    pub severity: f64,
}

/// What the metrics interface reports for one operator this slot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricFault {
    /// Clean reading.
    None,
    /// Scrape failed: CPU and capacity read NaN, flagged degraded.
    Dropout,
    /// Previous slot's snapshot re-served, flagged degraded.
    Stale,
    /// Capacity sample multiplied by `factor` (`0.0` = NaN) — *not*
    /// flagged: corruption is silent, the sanitizer must catch it.
    Corrupt { factor: f64 },
}

/// Fate of the reconfiguration attempted after this slot.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum ReconfigFault {
    #[default]
    None,
    /// The checkpoint restore fails; the deployment is held.
    Fail,
    /// The pause is multiplied by `factor`.
    Slow { factor: f64 },
}

/// Everything the engine needs to apply for one decision slot.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotFaults {
    /// Per-operator effective-capacity multiplier (1.0 = unaffected).
    pub capacity_multiplier: Vec<f64>,
    /// Per-operator metric fate.
    pub metric: Vec<MetricFault>,
    /// Fate of the reconfiguration attempted at the end of this slot.
    pub reconfig: ReconfigFault,
}

/// Runtime fault driver: owns the plan, the dedicated RNG stream, and the
/// multi-slot recovery state. Both engines call
/// [`begin_slot`](FaultState::begin_slot) once per slot in slot order, so
/// the same seed and plan yield the same realization everywhere.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    /// Legacy [`NoiseConfig::failures`](crate::noise::NoiseConfig) model,
    /// drawn on this stream so both engines treat it identically.
    legacy: Option<FailureModel>,
    rng: Rng,
    /// Remaining / total recovery slots and severity per operator.
    crash_left: Vec<usize>,
    crash_total: Vec<usize>,
    crash_severity: Vec<f64>,
    straggler_left: usize,
    straggler_total: usize,
    straggler_severity: f64,
    events: Vec<FaultEvent>,
}

impl FaultState {
    /// Build the driver for an experiment `seed` (the *engine* seed — the
    /// fault stream is salted internally so it never aliases the noise
    /// stream).
    pub fn new(plan: FaultPlan, legacy: Option<FailureModel>, seed: u64) -> FaultState {
        FaultState {
            plan,
            legacy,
            rng: Rng::new(seed ^ FAULT_STREAM_SALT),
            crash_left: Vec::new(),
            crash_total: Vec::new(),
            crash_severity: Vec::new(),
            straggler_left: 0,
            straggler_total: 0,
            straggler_severity: 0.0,
            events: Vec::new(),
        }
    }

    /// The plan driving this state.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Record a fault event (engines use this for faults whose effect is
    /// only known at application time, e.g. reconfiguration failures).
    pub fn record_event(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Take all events recorded since the last drain.
    pub fn drain_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// Compute this slot's faults for `n_ops` operators. Must be called
    /// exactly once per slot, in slot order, with a consistent `n_ops` —
    /// the draw order below is part of the reproducibility contract.
    pub fn begin_slot(&mut self, t: usize, n_ops: usize) -> SlotFaults {
        if self.crash_left.len() != n_ops {
            self.crash_left = vec![0; n_ops];
            self.crash_total = vec![1; n_ops];
            self.crash_severity = vec![0.0; n_ops];
        }
        let mut mult = vec![1.0_f64; n_ops];
        let mut metric = vec![MetricFault::None; n_ops];
        let mut reconfig = ReconfigFault::None;

        // 1. Legacy transient failures (one-slot capacity loss).
        if let Some(fm) = self.legacy {
            for (i, m) in mult.iter_mut().enumerate() {
                if fm.prob_per_slot > 0.0 && self.rng.uniform() < fm.prob_per_slot {
                    let loss = fm.capacity_loss.clamp(0.0, 1.0);
                    *m *= 1.0 - loss;
                    self.events.push(FaultEvent {
                        slot: t,
                        kind: FaultKind::PodCrash,
                        operator: Some(i),
                        severity: loss,
                    });
                }
            }
        }

        // 2. Stochastic faults, in a fixed draw order.
        let r = self.plan.rates;
        if r.pod_crash_prob > 0.0 {
            for i in 0..n_ops {
                if self.rng.uniform() < r.pod_crash_prob {
                    self.start_crash(t, i, r.crash_capacity_loss, r.crash_recovery_slots);
                }
            }
        }
        if r.straggler_prob > 0.0 && self.rng.uniform() < r.straggler_prob {
            self.start_straggler(t, r.straggler_loss, 1);
        }
        if r.reconfig_fail_prob > 0.0 && self.rng.uniform() < r.reconfig_fail_prob {
            reconfig = ReconfigFault::Fail;
        }
        // The slow-probability draw happens whenever the rate is enabled —
        // before the precedence check — so the stream stays aligned whether
        // or not a failure already claimed the slot.
        if r.reconfig_slow_prob > 0.0
            && self.rng.uniform() < r.reconfig_slow_prob
            && reconfig == ReconfigFault::None
        {
            reconfig = ReconfigFault::Slow {
                factor: r.reconfig_slow_factor.max(1.0),
            };
        }
        for (i, slot_fault) in metric.iter_mut().enumerate() {
            let dropout = r.metric_dropout_prob > 0.0 && self.rng.uniform() < r.metric_dropout_prob;
            let stale = r.metric_stale_prob > 0.0 && self.rng.uniform() < r.metric_stale_prob;
            let corrupt = r.metric_corrupt_prob > 0.0 && self.rng.uniform() < r.metric_corrupt_prob;
            *slot_fault = if dropout {
                self.events.push(FaultEvent {
                    slot: t,
                    kind: FaultKind::MetricDropout,
                    operator: Some(i),
                    severity: 0.0,
                });
                MetricFault::Dropout
            } else if stale {
                self.events.push(FaultEvent {
                    slot: t,
                    kind: FaultKind::MetricStale,
                    operator: Some(i),
                    severity: 0.0,
                });
                MetricFault::Stale
            } else if corrupt {
                self.events.push(FaultEvent {
                    slot: t,
                    kind: FaultKind::MetricCorrupt,
                    operator: Some(i),
                    severity: r.metric_corrupt_factor,
                });
                MetricFault::Corrupt {
                    factor: r.metric_corrupt_factor,
                }
            } else {
                MetricFault::None
            };
        }

        // 3. Scripted faults (no randomness). A duration > 1 keeps
        //    metric/reconfig faults firing on consecutive slots; capacity
        //    kinds carry their own recovery state.
        let scripted: Vec<ScriptedFault> = self.plan.scripted.clone();
        for f in &scripted {
            let dur = f.duration_slots.max(1);
            let active_now = t >= f.slot && t < f.slot + dur;
            match f.kind {
                FaultKind::PodCrash => {
                    if t == f.slot {
                        match f.operator {
                            Some(i) if i < n_ops => self.start_crash(t, i, f.severity, dur),
                            Some(_) => {}
                            None => {
                                for i in 0..n_ops {
                                    self.start_crash(t, i, f.severity, dur);
                                }
                            }
                        }
                    }
                }
                FaultKind::Straggler => {
                    if t == f.slot {
                        self.start_straggler(t, f.severity, dur);
                    }
                }
                FaultKind::ReconfigFail => {
                    if active_now {
                        reconfig = ReconfigFault::Fail;
                    }
                }
                FaultKind::ReconfigSlow => {
                    if active_now && reconfig == ReconfigFault::None {
                        reconfig = ReconfigFault::Slow {
                            factor: f.severity.max(1.0),
                        };
                    }
                }
                FaultKind::MetricDropout | FaultKind::MetricStale | FaultKind::MetricCorrupt => {
                    if active_now {
                        let fault = match f.kind {
                            FaultKind::MetricDropout => MetricFault::Dropout,
                            FaultKind::MetricStale => MetricFault::Stale,
                            _ => MetricFault::Corrupt { factor: f.severity },
                        };
                        match f.operator {
                            Some(i) if i < n_ops => {
                                if let Some(mf) = metric.get_mut(i) {
                                    *mf = fault;
                                    self.events.push(FaultEvent {
                                        slot: t,
                                        kind: f.kind,
                                        operator: Some(i),
                                        severity: f.severity,
                                    });
                                }
                            }
                            Some(_) => {}
                            None => {
                                for (i, mf) in metric.iter_mut().enumerate() {
                                    *mf = fault;
                                    self.events.push(FaultEvent {
                                        slot: t,
                                        kind: f.kind,
                                        operator: Some(i),
                                        severity: f.severity,
                                    });
                                }
                            }
                        }
                    }
                }
                // Control-plane faults: invisible to the engines. The
                // recovery harness interprets them via its own
                // [`ControllerFaultDriver`] over the same plan; keeping
                // them out of this match (and off this RNG stream) is
                // what lets controller chaos layer onto data-plane chaos
                // without shifting its realization.
                FaultKind::ControllerCrash
                | FaultKind::CheckpointCorrupt
                | FaultKind::CheckpointStale => {}
            }
        }

        // 4. Apply ongoing recovery windows: capacity ramps back linearly,
        //    losing severity × remaining/total.
        for ((left, &total), (&severity, m)) in self
            .crash_left
            .iter_mut()
            .zip(&self.crash_total)
            .zip(self.crash_severity.iter().zip(mult.iter_mut()))
        {
            if *left > 0 {
                let ratio = crate::convert::usize_to_f64(*left)
                    / crate::convert::usize_to_f64(total.max(1));
                *m *= (1.0 - severity.clamp(0.0, 1.0) * ratio).max(0.0);
                *left -= 1;
            }
        }
        if self.straggler_left > 0 {
            let ratio = crate::convert::usize_to_f64(self.straggler_left)
                / crate::convert::usize_to_f64(self.straggler_total.max(1));
            let factor = (1.0 - self.straggler_severity.clamp(0.0, 1.0) * ratio).max(0.0);
            for m in mult.iter_mut() {
                *m *= factor;
            }
            self.straggler_left -= 1;
        }

        SlotFaults {
            capacity_multiplier: mult,
            metric,
            reconfig,
        }
    }

    fn start_crash(&mut self, t: usize, op: usize, severity: f64, recovery_slots: usize) {
        let dur = recovery_slots.max(1);
        // A new crash supersedes a nearly-recovered one; keep the worse.
        // An out-of-range operator id (a malformed plan) is a no-op rather
        // than a panic — the event is still logged below for diagnosis.
        let superseded = self.crash_left.get(op).copied().unwrap_or(0) == 0
            || severity >= self.crash_severity.get(op).copied().unwrap_or(0.0);
        if superseded {
            if let Some(left) = self.crash_left.get_mut(op) {
                *left = dur;
            }
            if let Some(total) = self.crash_total.get_mut(op) {
                *total = dur;
            }
            if let Some(sev) = self.crash_severity.get_mut(op) {
                *sev = severity.clamp(0.0, 1.0);
            }
        }
        self.events.push(FaultEvent {
            slot: t,
            kind: FaultKind::PodCrash,
            operator: Some(op),
            severity: severity.clamp(0.0, 1.0),
        });
    }

    fn start_straggler(&mut self, t: usize, severity: f64, duration: usize) {
        let dur = duration.max(1);
        if self.straggler_left == 0 || severity >= self.straggler_severity {
            self.straggler_left = dur;
            self.straggler_total = dur;
            self.straggler_severity = severity.clamp(0.0, 1.0);
        }
        self.events.push(FaultEvent {
            slot: t,
            kind: FaultKind::Straggler,
            operator: None,
            severity: severity.clamp(0.0, 1.0),
        });
    }
}

// ---------------------------------------------------------------------------
// Control-plane faults.
// ---------------------------------------------------------------------------

/// XOR salt deriving the *controller* fault stream from the experiment
/// seed. Distinct from [`FAULT_STREAM_SALT`] so controller chaos and
/// data-plane chaos never share draws: layering controller crashes onto a
/// pod-crash + metric-corruption plan leaves the data-plane realization
/// bit-identical.
const CONTROLLER_FAULT_SALT: u64 = 0xC047_011E_5EED_FA17;

/// Control-plane fate of one decision slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerFault {
    /// The controller process dies at the top of this slot (scripted and
    /// stochastic triggers are merged, so a slot crashes at most once —
    /// the two can never double-fire).
    pub crash: bool,
    /// The newest checkpoint blob is torn on stable storage this slot.
    pub corrupt_checkpoint: bool,
    /// Checkpoint writes are suppressed this slot (staleness window).
    pub suppress_checkpoint: bool,
}

/// Fault driver for the control plane, run by the recovery harness
/// alongside the engines' [`FaultState`]. It interprets the
/// controller-kind entries of the *same* [`FaultPlan`] on a dedicated
/// salted RNG stream; like `begin_slot`, it must be called exactly once
/// per slot in slot order, and it draws only when
/// [`FaultRates::controller_crash_prob`] is positive, so an inert plan
/// leaves every stream untouched.
#[derive(Clone, Debug)]
pub struct ControllerFaultDriver {
    plan: FaultPlan,
    rng: Rng,
}

impl ControllerFaultDriver {
    /// Build the driver for an experiment `seed` (the same master seed
    /// the engine was built with; the stream is salted internally).
    pub fn new(plan: FaultPlan, seed: u64) -> ControllerFaultDriver {
        ControllerFaultDriver {
            plan,
            rng: Rng::new(seed ^ CONTROLLER_FAULT_SALT),
        }
    }

    /// Compute this slot's control-plane faults.
    pub fn begin_slot(&mut self, t: usize) -> ControllerFault {
        let mut out = ControllerFault::default();
        let r = self.plan.rates;
        if r.controller_crash_prob > 0.0 && self.rng.uniform() < r.controller_crash_prob {
            out.crash = true;
        }
        for f in &self.plan.scripted {
            let dur = f.duration_slots.max(1);
            let active_now = t >= f.slot && t < f.slot + dur;
            if !active_now {
                continue;
            }
            match f.kind {
                FaultKind::ControllerCrash => out.crash = true,
                FaultKind::CheckpointCorrupt => out.corrupt_checkpoint = true,
                FaultKind::CheckpointStale => out.suppress_checkpoint = true,
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_yields_identity_faults() {
        let mut fs = FaultState::new(FaultPlan::none(), None, 42);
        for t in 0..10 {
            let sf = fs.begin_slot(t, 3);
            assert_eq!(sf.capacity_multiplier, vec![1.0; 3]);
            assert!(sf.metric.iter().all(|m| *m == MetricFault::None));
            assert_eq!(sf.reconfig, ReconfigFault::None);
        }
        assert!(fs.drain_events().is_empty());
        assert!(FaultPlan::none().is_inert());
    }

    #[test]
    fn same_seed_same_realization() {
        let plan = FaultPlan {
            rates: FaultRates {
                pod_crash_prob: 0.3,
                metric_dropout_prob: 0.2,
                reconfig_fail_prob: 0.1,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut a = FaultState::new(plan.clone(), None, 7);
        let mut b = FaultState::new(plan, None, 7);
        for t in 0..50 {
            assert_eq!(a.begin_slot(t, 4), b.begin_slot(t, 4));
        }
        assert_eq!(a.drain_events(), b.drain_events());
    }

    #[test]
    fn scripted_crash_recovers_linearly() {
        let plan = FaultPlan::none().with(ScriptedFault {
            slot: 2,
            kind: FaultKind::PodCrash,
            operator: Some(0),
            severity: 1.0,
            duration_slots: 4,
        });
        let mut fs = FaultState::new(plan, None, 1);
        let mut mults = Vec::new();
        for t in 0..8 {
            mults.push(fs.begin_slot(t, 2).capacity_multiplier[0]);
        }
        assert_eq!(&mults[..2], &[1.0, 1.0]);
        assert_eq!(mults[2], 0.0); // full loss at impact
        assert!((mults[3] - 0.25).abs() < 1e-12);
        assert!((mults[4] - 0.5).abs() < 1e-12);
        assert!((mults[5] - 0.75).abs() < 1e-12);
        assert_eq!(&mults[6..], &[1.0, 1.0]);
        let events = fs.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FaultKind::PodCrash);
        assert_eq!(events[0].slot, 2);
    }

    #[test]
    fn straggler_hits_every_operator() {
        let plan = FaultPlan::none().with(ScriptedFault {
            slot: 1,
            kind: FaultKind::Straggler,
            operator: None,
            severity: 0.5,
            duration_slots: 1,
        });
        let mut fs = FaultState::new(plan, None, 1);
        let _ = fs.begin_slot(0, 3);
        let sf = fs.begin_slot(1, 3);
        for m in &sf.capacity_multiplier {
            assert!((m - 0.5).abs() < 1e-12);
        }
        assert_eq!(fs.begin_slot(2, 3).capacity_multiplier, vec![1.0; 3]);
    }

    #[test]
    fn scripted_metric_and_reconfig_faults_repeat_for_duration() {
        let plan = FaultPlan::none()
            .with(ScriptedFault {
                slot: 1,
                kind: FaultKind::MetricDropout,
                operator: Some(1),
                severity: 0.0,
                duration_slots: 2,
            })
            .with(ScriptedFault {
                slot: 3,
                kind: FaultKind::ReconfigFail,
                operator: None,
                severity: 0.0,
                duration_slots: 2,
            });
        let mut fs = FaultState::new(plan, None, 9);
        assert_eq!(fs.begin_slot(0, 2).metric[1], MetricFault::None);
        assert_eq!(fs.begin_slot(1, 2).metric[1], MetricFault::Dropout);
        assert_eq!(fs.begin_slot(2, 2).metric[1], MetricFault::Dropout);
        let s3 = fs.begin_slot(3, 2);
        assert_eq!(s3.metric[1], MetricFault::None);
        assert_eq!(s3.reconfig, ReconfigFault::Fail);
        assert_eq!(fs.begin_slot(4, 2).reconfig, ReconfigFault::Fail);
        assert_eq!(fs.begin_slot(5, 2).reconfig, ReconfigFault::None);
    }

    #[test]
    fn legacy_failure_model_draws_on_fault_stream() {
        let fm = FailureModel {
            prob_per_slot: 1.0,
            capacity_loss: 0.4,
        };
        let mut fs = FaultState::new(FaultPlan::none(), Some(fm), 3);
        let sf = fs.begin_slot(0, 2);
        for m in &sf.capacity_multiplier {
            assert!((m - 0.6).abs() < 1e-12);
        }
        assert_eq!(fs.drain_events().len(), 2);
        // zero-probability legacy model consumes no entropy and never fires
        let mut quiet = FaultState::new(
            FaultPlan::none(),
            Some(FailureModel {
                prob_per_slot: 0.0,
                capacity_loss: 0.5,
            }),
            3,
        );
        assert_eq!(quiet.begin_slot(0, 2).capacity_multiplier, vec![1.0; 2]);
    }

    #[test]
    fn corrupt_factor_zero_means_nan_injection() {
        let plan = FaultPlan::none().with(ScriptedFault {
            slot: 0,
            kind: FaultKind::MetricCorrupt,
            operator: Some(0),
            severity: 0.0,
            duration_slots: 1,
        });
        let mut fs = FaultState::new(plan, None, 5);
        assert_eq!(
            fs.begin_slot(0, 1).metric[0],
            MetricFault::Corrupt { factor: 0.0 }
        );
    }

    #[test]
    fn controller_driver_interprets_scripted_control_plane_kinds() {
        let plan = FaultPlan::none()
            .with(ScriptedFault {
                slot: 2,
                kind: FaultKind::ControllerCrash,
                operator: None,
                severity: 0.0,
                duration_slots: 1,
            })
            .with(ScriptedFault {
                slot: 3,
                kind: FaultKind::CheckpointCorrupt,
                operator: None,
                severity: 0.0,
                duration_slots: 1,
            })
            .with(ScriptedFault {
                slot: 4,
                kind: FaultKind::CheckpointStale,
                operator: None,
                severity: 0.0,
                duration_slots: 2,
            });
        let mut d = ControllerFaultDriver::new(plan, 9);
        assert_eq!(d.begin_slot(0), ControllerFault::default());
        assert_eq!(d.begin_slot(1), ControllerFault::default());
        assert!(d.begin_slot(2).crash);
        assert!(d.begin_slot(3).corrupt_checkpoint);
        assert!(d.begin_slot(4).suppress_checkpoint);
        assert!(d.begin_slot(5).suppress_checkpoint);
        assert_eq!(d.begin_slot(6), ControllerFault::default());
    }

    #[test]
    fn scripted_and_stochastic_crash_never_double_fire() {
        // Stochastic crash with probability 1 fires every slot; layering a
        // scripted crash on the same slot must still yield a single crash
        // flag, not two events.
        let plan = FaultPlan {
            scripted: vec![ScriptedFault {
                slot: 3,
                kind: FaultKind::ControllerCrash,
                operator: None,
                severity: 0.0,
                duration_slots: 1,
            }],
            rates: FaultRates {
                controller_crash_prob: 1.0,
                ..Default::default()
            },
        };
        let mut d = ControllerFaultDriver::new(plan, 11);
        for t in 0..6 {
            let f = d.begin_slot(t);
            assert!(f.crash, "slot {t} should crash");
        }
    }

    #[test]
    fn controller_kinds_are_invisible_to_the_engines() {
        // A plan made only of control-plane kinds must leave the engine
        // driver's output at identity for every slot.
        let plan = FaultPlan {
            scripted: vec![ScriptedFault {
                slot: 1,
                kind: FaultKind::ControllerCrash,
                operator: None,
                severity: 1.0,
                duration_slots: 4,
            }],
            rates: FaultRates {
                controller_crash_prob: 0.7,
                ..Default::default()
            },
        };
        assert!(!plan.is_inert());
        let mut fs = FaultState::new(plan, None, 21);
        for t in 0..8 {
            let sf = fs.begin_slot(t, 3);
            assert_eq!(sf.capacity_multiplier, vec![1.0; 3]);
            assert!(sf.metric.iter().all(|m| *m == MetricFault::None));
            assert_eq!(sf.reconfig, ReconfigFault::None);
        }
        assert!(fs.drain_events().is_empty());
    }
}
