//! The fluid (rate-based) simulation engine.
//!
//! Time advances in fine-grained *ticks* (default 10 s) inside coarse
//! *decision slots* (default 600 s — the paper's 10-minute reconfiguration
//! interval). Each tick:
//!
//! 1. effective capacities are drawn: true capacity (from the
//!    [`CapacityModel`](crate::capacity::CapacityModel)) × cloud-noise
//!    multiplier;
//! 2. flows propagate through the DAG in topological order; an operator
//!    processes its fresh offered load *plus* buffered backlog, up to its
//!    effective capacity (Eq. 4's truncation with a buffer, Section 4.2);
//! 3. unprocessed work accumulates in the operator's buffer (bounded —
//!    overflow counts as dropped tuples, the paper's "latency and data
//!    loss");
//! 4. pod-seconds are metered into dollars.
//!
//! Reconfiguration ([`FluidSim::reconfigure`]) models the Flink
//! checkpoint stop-and-resume: a configurable pause (default 30 s) at the
//! start of the next slot during which nothing is processed but pods still
//! cost money — exactly the "throughput temporarily decreases a lot" dips
//! of Figure 6.

use crate::capacity::Application;
use crate::cluster::{ClusterConfig, CostMeter, Deployment};
use crate::error::SimError;
use crate::faults::{FaultEvent, FaultKind, FaultPlan, FaultState, MetricFault, ReconfigFault};
use crate::metrics::{OperatorMetrics, SlotMetrics};
use crate::noise::{NoiseConfig, Rng};
use dragster_dag::ComponentKind;

/// Simulation-engine knobs (distinct from cluster economics).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Fine-grained integration step, seconds.
    pub tick_secs: f64,
    /// Decision-slot length, seconds (the paper adjusts every 10 min).
    pub slot_secs: f64,
    /// Per-operator buffer capacity in tuples; overflow is dropped.
    pub buffer_capacity: f64,
    /// Largest buffer an *intermediate* (non-source-fed) operator
    /// **reports** through the metrics interface. Flink's credit-based
    /// flow control bounds intermediate network buffers to a few MB, so a
    /// monitoring API never sees a large queue there — the backlog piles
    /// up at the ingestion operators (Kafka-backed). The simulator keeps
    /// exact tuple accounting internally; only the observation is tiered.
    /// This is the signal that misleads buffer-size-driven policies like
    /// Dhalion under a tight budget (Fig. 4d).
    pub network_buffer_report_cap: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            tick_secs: 10.0,
            slot_secs: 600.0,
            buffer_capacity: 5.0e7,
            network_buffer_report_cap: 2.0e6,
        }
    }
}

/// The fluid simulator: owns the application ground truth, cluster state,
/// buffers, and the cost meter.
pub struct FluidSim {
    app: Application,
    cluster: ClusterConfig,
    sim: SimConfig,
    noise: NoiseConfig,
    rng: Rng,
    deployment: Deployment,
    /// Buffered (unprocessed) work per operator, in *output-equivalent*
    /// tuples (already mapped through `h`).
    buffers: Vec<f64>,
    cost: CostMeter,
    time_secs: f64,
    slot_counter: usize,
    /// Pause owed at the start of the next slot (set by `reconfigure`).
    pending_pause_secs: f64,
    /// Experiment seed (kept so `with_faults` can derive the fault stream).
    seed: u64,
    /// The chaos layer: scripted + stochastic faults on a dedicated RNG
    /// stream (legacy `NoiseConfig::failures` draws here too, so the main
    /// noise stream is untouched by the failure path).
    faults: FaultState,
    /// Fate of the next `reconfigure` call, set each slot by the fault
    /// layer and consumed by `reconfigure`.
    pending_reconfig_fault: ReconfigFault,
    /// Previous slot's clean per-operator metrics — what a stale monitor
    /// re-serves.
    prev_operators: Option<Vec<OperatorMetrics>>,
    /// Whether each operator is fed directly by a source (ingestion tier).
    source_fed: Vec<bool>,
    /// `routing[id][e]`: predecessor slot that flow along `succs[e]` of
    /// component `id` lands in at the successor (precomputed; the per-tick
    /// loop does no edge searches).
    routing: Vec<Vec<usize>>,
    /// Capacity index per component id; only meaningful for operators
    /// (validated at construction), `usize::MAX` elsewhere and never read.
    cap_of: Vec<usize>,
    total_processed: f64,
    total_dropped: f64,
    /// Reusable per-slot/per-tick working memory, sized once at
    /// construction (the topology shape is fixed): the slot and tick
    /// loops allocate nothing (L16).
    scratch: FluidScratch,
}

/// Working memory for [`FluidSim::run_slot`] / `tick_flows` (see the
/// `scratch` field). All vectors are shaped at construction and zeroed in
/// place at each reuse boundary.
struct FluidScratch {
    /// Per-component received-flow rates, edge-indexed (`tick_flows`).
    recv: Vec<Vec<f64>>,
    /// The current tick's flow outputs.
    flows: TickFlows,
    /// Effective (noise-multiplied) capacities for the current tick.
    eff_caps: Vec<f64>,
    /// Per-edge fresh desired output for the operator being propagated.
    fresh: Vec<f64>,
    /// True capacities of the current deployment for this slot.
    true_caps: Vec<f64>,
    /// Slot accumulators (tuples / integrated rates, per operator).
    acc_input: Vec<f64>,
    acc_input_edges: Vec<Vec<f64>>,
    acc_output: Vec<f64>,
    acc_offered: Vec<f64>,
    acc_util: Vec<f64>,
    saturated_ticks: Vec<usize>,
    dropped_by_op: Vec<f64>,
    /// Buffer levels at the start of the slot (backpressure baseline).
    buffers_at_start: Vec<f64>,
}

impl FluidScratch {
    fn for_app(app: &Application) -> FluidScratch {
        let topo = &app.topology;
        let m = topo.n_operators();
        let per_op_edges = || -> Vec<Vec<f64>> {
            topo.operator_ids()
                .iter()
                .map(|id| vec![0.0; topo.component(*id).preds.len()])
                .collect()
        };
        FluidScratch {
            recv: topo
                .components()
                .iter()
                .map(|c| vec![0.0; c.preds.len()])
                .collect(),
            flows: TickFlows {
                input: vec![0.0; m],
                input_edges: per_op_edges(),
                output: vec![0.0; m],
                offered: vec![0.0; m],
                util: vec![0.0; m],
                dropped_by_op: vec![0.0; m],
                sink_rate: 0.0,
                dropped: 0.0,
            },
            eff_caps: Vec::with_capacity(m),
            fresh: Vec::new(),
            true_caps: Vec::with_capacity(m),
            acc_input: vec![0.0; m],
            acc_input_edges: per_op_edges(),
            acc_output: vec![0.0; m],
            acc_offered: vec![0.0; m],
            acc_util: vec![0.0; m],
            saturated_ticks: vec![0; m],
            dropped_by_op: vec![0.0; m],
            buffers_at_start: vec![0.0; m],
        }
    }

    /// Zero the slot accumulators in place.
    fn begin_slot(&mut self) {
        for v in self.acc_input.iter_mut() {
            *v = 0.0;
        }
        for edges in self.acc_input_edges.iter_mut() {
            for v in edges.iter_mut() {
                *v = 0.0;
            }
        }
        for v in self.acc_output.iter_mut() {
            *v = 0.0;
        }
        for v in self.acc_offered.iter_mut() {
            *v = 0.0;
        }
        for v in self.acc_util.iter_mut() {
            *v = 0.0;
        }
        for v in self.saturated_ticks.iter_mut() {
            *v = 0;
        }
        for v in self.dropped_by_op.iter_mut() {
            *v = 0.0;
        }
    }
}

impl FluidSim {
    /// Create a simulator starting from `initial` (clamped to the task
    /// range; must respect the budget if one is configured).
    ///
    /// # Errors
    /// [`SimError::BudgetExceeded`] if `initial` violates the cluster
    /// budget, [`SimError::DeploymentArity`] on an arity mismatch, and
    /// [`SimError::Dag`] if the topology is structurally inconsistent.
    pub fn new(
        app: Application,
        cluster: ClusterConfig,
        sim: SimConfig,
        noise: NoiseConfig,
        seed: u64,
        initial: Deployment,
    ) -> Result<FluidSim, SimError> {
        let initial = initial.clamped(cluster.max_tasks_per_operator);
        if !initial.within_budget(cluster.budget_pods) {
            return Err(SimError::BudgetExceeded {
                total_pods: initial.total_pods(),
                budget: cluster.budget_pods.unwrap_or(0),
            });
        }
        if initial.len() != app.n_operators() {
            return Err(SimError::DeploymentArity {
                expected: app.n_operators(),
                got: initial.len(),
            });
        }
        let routing = app.topology.edge_routing()?;
        let mut cap_of = vec![usize::MAX; app.topology.components().len()];
        for (i, c) in app.topology.components().iter().enumerate() {
            if c.kind == ComponentKind::Operator {
                cap_of[i] = c.capacity_index.ok_or_else(|| {
                    dragster_dag::DagError::MissingCapacityIndex {
                        component: c.name.clone(),
                    }
                })?;
            }
        }
        let m = app.n_operators();
        let cost = CostMeter::new(cluster.cost_per_pod_hour);
        let mut source_fed = vec![false; m];
        for id in app.topology.source_ids() {
            for succ in &app.topology.component(id).succs {
                if let Some(ci) = app.topology.component(*succ).capacity_index {
                    source_fed[ci] = true;
                }
            }
        }
        let faults = FaultState::new(FaultPlan::none(), noise.failures, seed);
        let scratch = FluidScratch::for_app(&app);
        Ok(FluidSim {
            app,
            cluster,
            sim,
            noise,
            rng: Rng::new(seed),
            deployment: initial,
            buffers: vec![0.0; m],
            cost,
            time_secs: 0.0,
            slot_counter: 0,
            pending_pause_secs: 0.0,
            seed,
            faults,
            pending_reconfig_fault: ReconfigFault::None,
            prev_operators: None,
            source_fed,
            routing,
            cap_of,
            total_processed: 0.0,
            total_dropped: 0.0,
            scratch,
        })
    }

    /// Attach a fault plan (chaos layer). Replaces any previous plan; the
    /// legacy [`NoiseConfig::failures`] model keeps drawing on the same
    /// dedicated fault stream. Call before the first slot — attaching
    /// mid-run restarts the fault stream.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> FluidSim {
        self.faults = FaultState::new(plan, self.noise.failures, self.seed);
        self
    }

    /// Fault events recorded since the last drain (the harness folds these
    /// into the [`Trace`](crate::harness::Trace)).
    pub fn drain_fault_events(&mut self) -> Vec<FaultEvent> {
        self.faults.drain_events()
    }

    /// The master experiment seed this engine was built with. The recovery
    /// harness derives the controller fault stream from it (salted), so
    /// control-plane chaos shares the experiment's single seed without
    /// sharing any of its streams.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The active fault plan (inert by default; set via
    /// [`FluidSim::with_faults`]).
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// The application (ground truth).
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// Cluster economics.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Engine configuration.
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim
    }

    /// Current deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Simulated seconds elapsed.
    pub fn time_secs(&self) -> f64 {
        self.time_secs
    }

    /// Total dollars spent so far.
    pub fn total_cost(&self) -> f64 {
        self.cost.dollars()
    }

    /// Total tuples delivered to the sink so far.
    pub fn total_processed(&self) -> f64 {
        self.total_processed
    }

    /// Total tuples dropped so far.
    pub fn total_dropped(&self) -> f64 {
        self.total_dropped
    }

    /// Current buffer backlog per operator.
    pub fn buffers(&self) -> &[f64] {
        &self.buffers
    }

    /// Request a reconfiguration. Takes effect at the start of the next
    /// slot, paying the checkpoint pause if the deployment actually
    /// changes. Returns `Err` (and changes nothing) if the target violates
    /// the budget; the target is clamped to the per-operator task range.
    pub fn reconfigure(&mut self, target: Deployment) -> Result<(), SimError> {
        let target = target.clamped(self.cluster.max_tasks_per_operator);
        if !target.within_budget(self.cluster.budget_pods) {
            return Err(SimError::BudgetExceeded {
                total_pods: target.total_pods(),
                budget: self.cluster.budget_pods.unwrap_or(0),
            });
        }
        if target.len() != self.app.n_operators() {
            return Err(SimError::DeploymentArity {
                expected: self.app.n_operators(),
                got: target.len(),
            });
        }
        if target != self.deployment {
            // An actual deployment change goes through checkpoint
            // stop-and-resume — the step the chaos layer can break.
            match std::mem::take(&mut self.pending_reconfig_fault) {
                ReconfigFault::Fail => {
                    let slot = self.slot_counter.saturating_sub(1);
                    self.faults.record_event(FaultEvent {
                        slot,
                        kind: FaultKind::ReconfigFail,
                        operator: None,
                        severity: 1.0,
                    });
                    // Deployment held (last known good); the harness
                    // retries with backoff instead of aborting.
                    return Err(SimError::ReconfigFailed { slot });
                }
                ReconfigFault::Slow { factor } => {
                    self.faults.record_event(FaultEvent {
                        slot: self.slot_counter.saturating_sub(1),
                        kind: FaultKind::ReconfigSlow,
                        operator: None,
                        severity: factor,
                    });
                    self.deployment = target;
                    self.pending_pause_secs = self.cluster.reconfig_pause_secs * factor.max(1.0);
                }
                ReconfigFault::None => {
                    self.deployment = target;
                    self.pending_pause_secs = self.cluster.reconfig_pause_secs;
                }
            }
        }
        Ok(())
    }

    /// Noise-free steady-state throughput the *current* deployment would
    /// achieve under the given source rates (oracle view; not available to
    /// autoscalers through the metrics interface).
    ///
    /// # Errors
    /// [`SimError::Dag`] if propagation fails on this topology.
    pub fn ideal_throughput(&self, source_rates: &[f64]) -> Result<f64, SimError> {
        self.app
            .ideal_throughput(source_rates, &self.deployment.tasks)
    }

    /// Run one decision slot under constant source rates and return the
    /// Job-Monitor snapshot.
    pub fn run_slot(&mut self, source_rates: &[f64]) -> SlotMetrics {
        assert_eq!(
            source_rates.len(),
            self.app.topology.n_sources(),
            "source arity"
        );
        let slot_secs = self.sim.slot_secs;
        let tick = self.sim.tick_secs;
        assert!(
            slot_secs > 0.0 && tick > 0.0,
            "SimParams: slot_secs and tick_secs must be positive (got {slot_secs}, {tick})"
        );
        let pods = self.deployment.total_pods();

        // Chaos layer: this slot's fault realization, drawn on the
        // dedicated fault stream (an inert plan leaves the run untouched).
        let slot_faults = self
            .faults
            .begin_slot(self.slot_counter, self.app.n_operators());
        // The reconfiguration attempted at the end of this slot inherits
        // the slot's reconfig fate.
        self.pending_reconfig_fault = slot_faults.reconfig;

        // Checkpoint pause: nothing processes, sources keep producing into
        // the first operators' buffers, pods keep costing.
        let pause = self.pending_pause_secs.min(slot_secs);
        self.pending_pause_secs = 0.0;
        let reconfigured = pause > 0.0;
        if pause > 0.0 {
            self.absorb_paused_input(source_rates, pause);
            self.cost.charge(pods, pause);
            self.time_secs += pause;
        }

        let m = self.app.n_operators();
        self.scratch.begin_slot();
        let mut sink_tuples = 0.0;
        let mut dropped = 0.0;
        self.scratch.buffers_at_start.clone_from(&self.buffers);

        // A full-slot checkpoint pause would leave 0 active seconds and turn
        // the per-second metrics below into 0/0 = NaN; floor it instead (the
        // accumulators are all 0 in that case, so the rates read 0).
        let active_secs = (slot_secs - pause).max(1e-9);
        // Capped: a degenerate tick_secs (say 1e-300) would otherwise ask
        // for ~usize::MAX ticks — a hang, not a simulation. 1e7 ticks per
        // slot is far beyond any sane tick/slot ratio.
        let n_ticks =
            crate::convert::f64_to_usize_saturating((active_secs / tick).round().min(1e7)).max(1);
        let dt = active_secs / n_ticks as f64;

        self.app
            .true_capacities_into(&self.deployment.tasks, &mut self.scratch.true_caps);
        // Faults strike for the whole slot (pod restart time ≈ slot
        // scale); the controller only sees the degraded metrics. Legacy
        // `NoiseConfig::failures` and plan-driven crashes/stragglers both
        // arrive through the same multiplier vector.
        for (c, mult) in self
            .scratch
            .true_caps
            .iter_mut()
            .zip(slot_faults.capacity_multiplier.iter())
        {
            *c *= mult;
        }

        for _ in 0..n_ticks {
            // Cluster utilization from the previous tick's saturation is a
            // chicken-and-egg; we use the offered-vs-capacity ratio of the
            // *true* capacities as a cheap proxy for overcommit purposes.
            let cluster_util_proxy = 0.8;
            self.scratch.eff_caps.clear();
            for i in 0..self.scratch.true_caps.len() {
                let mult = self
                    .noise
                    .capacity_multiplier(&mut self.rng, cluster_util_proxy);
                let c = self.scratch.true_caps[i] * mult;
                self.scratch.eff_caps.push(c);
            }

            self.tick_flows(source_rates, dt);
            let s = &mut self.scratch;
            for i in 0..m {
                s.acc_input[i] += s.flows.input[i] * dt;
                for (k, v) in s.flows.input_edges[i].iter().enumerate() {
                    s.acc_input_edges[i][k] += v * dt;
                }
                s.acc_output[i] += s.flows.output[i] * dt;
                s.acc_offered[i] += s.flows.offered[i] * dt;
                s.acc_util[i] += s.flows.util[i] * dt;
                if s.flows.util[i] > 0.999 {
                    s.saturated_ticks[i] += 1;
                }
                s.dropped_by_op[i] += s.flows.dropped_by_op[i];
            }
            sink_tuples += self.scratch.flows.sink_rate * dt;
            dropped += self.scratch.flows.dropped;
        }

        self.cost.charge(pods, active_secs);
        self.time_secs += active_secs;
        self.total_processed += sink_tuples;
        self.total_dropped += dropped;

        let scratch = &self.scratch;
        let mut operators: Vec<OperatorMetrics> = (0..m)
            .map(|i| {
                let out_rate = scratch.acc_output[i] / active_secs;
                let true_util = (scratch.acc_util[i] / active_secs).clamp(0.0, 1.0);
                let observed_util = self.noise.observe_cpu(&mut self.rng, true_util);
                // Eq. 8: c_i = Σ_j e_j^i / cpu_i — noisy capacity sample.
                let capacity_sample = if observed_util > 0.0 {
                    out_rate / observed_util
                } else {
                    0.0
                };
                // Backpressure = the operator could not keep up with its
                // *incoming* rate this slot: its backlog grew (or it
                // overflowed). An operator draining old backlog at full
                // utilization is catching up, not backpressured — this is
                // what Flink's backpressure monitor reports.
                let buffer_grew = self.buffers[i] > scratch.buffers_at_start[i] + 1.0;
                let overflowed = scratch.dropped_by_op[i] > 0.0;
                let reported_buffer = if self.source_fed[i] {
                    self.buffers[i]
                } else {
                    self.buffers[i].min(self.sim.network_buffer_report_cap)
                };
                OperatorMetrics {
                    name: self.app.topology.operator_name(i).to_string(),
                    tasks: self.deployment.tasks[i],
                    input_rate: scratch.acc_input[i] / active_secs,
                    input_rates: scratch.acc_input_edges[i]
                        .iter()
                        .map(|v| v / active_secs)
                        .collect(),
                    output_rate: out_rate,
                    offered_load: scratch.acc_offered[i] / active_secs,
                    cpu_util: observed_util,
                    capacity_sample,
                    buffer_tuples: reported_buffer,
                    latency_estimate_secs: if out_rate > 1e-9 {
                        self.buffers[i] / out_rate
                    } else {
                        0.0
                    },
                    backpressure: buffer_grew || overflowed,
                    degraded: false,
                }
            })
            .collect();

        // Metric-fault overlay: the simulation above is ground truth; the
        // *observation* handed to autoscalers is what degrades. The clean
        // snapshot is cached first so a stale monitor re-serves last
        // slot's true reading (never a NaN chain).
        let clean_snapshot = operators.clone();
        for (i, om) in operators.iter_mut().enumerate() {
            match slot_faults.metric[i] {
                MetricFault::None => {}
                MetricFault::Dropout => {
                    // Scrape failed: Metrics-Server fields read NaN and the
                    // monitor knows it (degraded flag).
                    om.cpu_util = f64::NAN;
                    om.capacity_sample = f64::NAN;
                    om.degraded = true;
                }
                MetricFault::Stale => match self.prev_operators.as_ref() {
                    Some(prev) if i < prev.len() => {
                        *om = prev[i].clone();
                        om.degraded = true;
                    }
                    _ => {
                        // No previous snapshot (slot 0): behaves as dropout.
                        om.cpu_util = f64::NAN;
                        om.capacity_sample = f64::NAN;
                        om.degraded = true;
                    }
                },
                MetricFault::Corrupt { factor } => {
                    // Silent corruption: the monitor does NOT flag it; the
                    // sanitizer must catch the NaN / wild value.
                    om.capacity_sample = if factor > 0.0 {
                        om.capacity_sample * factor
                    } else {
                        f64::NAN
                    };
                }
            }
        }
        self.prev_operators = Some(clean_snapshot);

        let slot_cost = pods as f64 * slot_secs / 3600.0 * self.cluster.cost_per_pod_hour;
        self.slot_counter += 1;
        SlotMetrics {
            t: self.slot_counter - 1,
            sim_time_secs: self.time_secs,
            throughput: sink_tuples / slot_secs,
            processed_tuples: sink_tuples,
            dropped_tuples: dropped,
            cost_dollars: slot_cost,
            pods,
            source_rates: source_rates.to_vec(),
            reconfigured,
            pause_secs: pause,
            operators,
        }
    }

    /// During a pause, source output lands in the buffers of the sources'
    /// operator successors (bounded by buffer capacity).
    fn absorb_paused_input(&mut self, source_rates: &[f64], pause_secs: f64) {
        let topo = &self.app.topology;
        let src_ids = topo.source_ids();
        for (k, id) in src_ids.iter().enumerate() {
            let c = topo.component(*id);
            for (e, succ) in c.succs.iter().enumerate() {
                let sc = topo.component(*succ);
                if let Some(ci) = sc.capacity_index {
                    let tuples = source_rates[k] * c.alpha[e] * pause_secs;
                    let space = self.sim.buffer_capacity - self.buffers[ci];
                    let stored = tuples.min(space.max(0.0));
                    self.buffers[ci] += stored;
                    self.total_dropped += tuples - stored;
                }
            }
        }
    }

    /// One tick of buffered flow propagation, written into
    /// `self.scratch.flows` (reused across ticks — this is the innermost
    /// hot loop and allocates nothing). Rates are tuples/second; `dt`
    /// converts them to tuples for buffer updates. Effective capacities
    /// are read from `self.scratch.eff_caps`.
    fn tick_flows(&mut self, source_rates: &[f64], dt: f64) {
        let topo = &self.app.topology;
        let FluidScratch {
            recv,
            flows: out,
            eff_caps,
            fresh,
            ..
        } = &mut self.scratch;
        for r in recv.iter_mut() {
            for v in r.iter_mut() {
                *v = 0.0;
            }
        }
        out.reset();

        for id in topo.topo_order() {
            let c = topo.component(id);
            match c.kind {
                ComponentKind::Source => {
                    // Sources occupy the lowest component ids in declaration
                    // order, so `id.0` doubles as the source-rate index.
                    let rate = source_rates[id.0];
                    for (e, succ) in c.succs.iter().enumerate() {
                        let flow = rate * c.alpha[e];
                        recv[succ.0][self.routing[id.0][e]] = flow;
                    }
                }
                ComponentKind::Operator => {
                    let ci = self.cap_of[id.0];
                    // Reads of `recv[id.0]` complete before the emission
                    // loop writes `recv[succ.0]` (a DAG has no self-edges,
                    // so the slots are distinct).
                    let input_total: f64 = recv[id.0].iter().sum();
                    out.input_edges[ci].clone_from(&recv[id.0]);
                    // Fresh desired output per edge (h applied to fresh input).
                    fresh.clear();
                    for h in c.h.iter() {
                        fresh.push(h.eval(&recv[id.0]));
                    }
                    let fresh_total: f64 = fresh.iter().sum();
                    // Backlog drains at whatever capacity is left.
                    let backlog_rate = self.buffers[ci] / dt;
                    let work = fresh_total + backlog_rate;
                    let cap = eff_caps[ci];
                    let processed = work.min(cap);
                    // A fully-failed operator (capacity 0, e.g. a pod
                    // crash) burns no CPU: its true utilization is 0, not
                    // 1 — the genuine-zero reading the controller needs to
                    // see the failure.
                    let util = if cap > 0.0 {
                        (work / cap).min(1.0)
                    } else {
                        0.0
                    };
                    // Per-edge emission: respect the α capacity split of
                    // Eq. 4 but never emit more than the work available for
                    // that edge (fresh share + backlog share).
                    let share = |k: usize| -> f64 {
                        if fresh_total > 0.0 {
                            fresh[k] / fresh_total
                        } else if !c.succs.is_empty() {
                            1.0 / c.succs.len() as f64
                        } else {
                            0.0
                        }
                    };
                    let mut emitted_total = 0.0;
                    for (k, succ) in c.succs.iter().enumerate() {
                        let avail = fresh[k] + backlog_rate * share(k);
                        let edge_cap = cap * c.alpha[k];
                        let flow = avail.min(edge_cap);
                        emitted_total += flow;
                        recv[succ.0][self.routing[id.0][k]] = flow;
                    }
                    // Buffer update: work that arrived but wasn't emitted.
                    let leftover = (work - emitted_total).max(0.0) * dt;
                    let space = (self.sim.buffer_capacity).max(0.0);
                    let stored = leftover.min(space);
                    out.dropped += leftover - stored;
                    out.dropped_by_op[ci] += leftover - stored;
                    self.buffers[ci] = stored;

                    out.input[ci] = input_total;
                    out.output[ci] = emitted_total;
                    out.offered[ci] = fresh_total;
                    out.util[ci] = util.max(if processed > 0.0 { 0.01 } else { 0.0 });
                }
                ComponentKind::Sink => {
                    out.sink_rate = recv[id.0].iter().sum();
                }
            }
        }
    }
}

struct TickFlows {
    input: Vec<f64>,
    input_edges: Vec<Vec<f64>>,
    output: Vec<f64>,
    offered: Vec<f64>,
    util: Vec<f64>,
    dropped_by_op: Vec<f64>,
    sink_rate: f64,
    dropped: f64,
}

impl TickFlows {
    /// Zero every field in place for the next tick.
    fn reset(&mut self) {
        for v in self.input.iter_mut() {
            *v = 0.0;
        }
        for edges in self.input_edges.iter_mut() {
            for v in edges.iter_mut() {
                *v = 0.0;
            }
        }
        for v in self.output.iter_mut() {
            *v = 0.0;
        }
        for v in self.offered.iter_mut() {
            *v = 0.0;
        }
        for v in self.util.iter_mut() {
            *v = 0.0;
        }
        for v in self.dropped_by_op.iter_mut() {
            *v = 0.0;
        }
        self.sink_rate = 0.0;
        self.dropped = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityModel;
    use dragster_dag::TopologyBuilder;

    fn two_op_app(per_task: f64) -> Application {
        let topo = TopologyBuilder::new()
            .source("src")
            .operator("map")
            .operator("shuffle")
            .sink("out")
            .edge("src", "map")
            .edge("map", "shuffle")
            .edge("shuffle", "out")
            .build()
            .unwrap();
        Application::new(
            topo,
            vec![
                CapacityModel::Linear { per_task },
                CapacityModel::Linear { per_task },
            ],
        )
        .unwrap()
    }

    fn quiet_sim(app: Application, initial: Deployment) -> FluidSim {
        FluidSim::new(
            app,
            ClusterConfig::default(),
            SimConfig::default(),
            NoiseConfig::none(),
            1,
            initial,
        )
        .unwrap()
    }

    #[test]
    fn underload_passes_everything() {
        let mut sim = quiet_sim(two_op_app(100.0), Deployment::uniform(2, 5)); // cap 500
        let s = sim.run_slot(&[200.0]);
        assert!((s.throughput - 200.0).abs() < 1e-6, "{}", s.throughput);
        assert!((s.processed_tuples - 200.0 * 600.0).abs() < 1.0);
        assert_eq!(s.dropped_tuples, 0.0);
        assert_eq!(s.pods, 10);
        assert!(!s.operators[0].backpressure);
    }

    #[test]
    fn overload_truncates_to_capacity_and_buffers() {
        let mut sim = quiet_sim(two_op_app(100.0), Deployment::uniform(2, 1)); // cap 100
        let s = sim.run_slot(&[300.0]);
        assert!((s.throughput - 100.0).abs() < 1.0, "{}", s.throughput);
        // map buffers the excess 200/s for 600 s = 120k tuples
        assert!(s.operators[0].buffer_tuples > 1.0e5);
        assert!(s.operators[0].backpressure);
        // util is 1 at the bottleneck
        assert!(s.operators[0].cpu_util > 0.99);
    }

    #[test]
    fn capacity_sample_estimates_true_capacity() {
        let mut sim = quiet_sim(two_op_app(100.0), Deployment::uniform(2, 3)); // cap 300
        let s = sim.run_slot(&[200.0]);
        // util = 200/300, out 200 ⇒ c = 200/(2/3) = 300 = y. Noise-free.
        for o in &s.operators {
            assert!(
                (o.capacity_sample - 300.0).abs() < 1.0,
                "{}",
                o.capacity_sample
            );
        }
    }

    #[test]
    fn buffered_work_drains_when_capacity_returns() {
        let mut sim = quiet_sim(two_op_app(100.0), Deployment::uniform(2, 1));
        let s1 = sim.run_slot(&[300.0]); // builds big backlog at map
        assert!(s1.operators[0].buffer_tuples > 0.0);
        sim.reconfigure(Deployment::uniform(2, 10)).unwrap(); // cap 1000
        let s2 = sim.run_slot(&[300.0]);
        // backlog drains; throughput can exceed offered rate while draining
        assert!(s2.throughput > 300.0, "{}", s2.throughput);
        let s3 = sim.run_slot(&[300.0]);
        assert!(s3.operators[0].buffer_tuples < 1.0);
        assert!((s3.throughput - 300.0).abs() < 2.0);
    }

    #[test]
    fn reconfigure_pauses_and_costs() {
        let mut sim = quiet_sim(two_op_app(100.0), Deployment::uniform(2, 2));
        let s1 = sim.run_slot(&[100.0]);
        assert!(!s1.reconfigured);
        sim.reconfigure(Deployment::uniform(2, 3)).unwrap();
        let s2 = sim.run_slot(&[100.0]);
        assert!(s2.reconfigured);
        assert_eq!(s2.pause_secs, 30.0);
        // paused slot processes slightly fewer fresh tuples but catches up
        // from the buffered pause input; total over 2 slots ≈ offered.
        let total = s1.processed_tuples + s2.processed_tuples;
        assert!((total - 100.0 * 1200.0).abs() < 600.0, "{total}");
    }

    #[test]
    fn no_pause_when_deployment_unchanged() {
        let mut sim = quiet_sim(two_op_app(100.0), Deployment::uniform(2, 2));
        sim.reconfigure(Deployment::uniform(2, 2)).unwrap();
        let s = sim.run_slot(&[100.0]);
        assert!(!s.reconfigured);
        assert_eq!(s.pause_secs, 0.0);
    }

    #[test]
    fn budget_enforced() {
        let cluster = ClusterConfig {
            budget_pods: Some(6),
            ..Default::default()
        };
        let app = two_op_app(100.0);
        let mut sim = FluidSim::new(
            app,
            cluster,
            SimConfig::default(),
            NoiseConfig::none(),
            1,
            Deployment::uniform(2, 3),
        )
        .unwrap();
        assert!(sim.reconfigure(Deployment::uniform(2, 4)).is_err());
        assert_eq!(sim.deployment().tasks, vec![3, 3]);
        assert!(sim.reconfigure(Deployment { tasks: vec![2, 4] }).is_ok());
    }

    #[test]
    fn cost_metering_matches_pod_hours() {
        let mut sim = quiet_sim(two_op_app(100.0), Deployment::uniform(2, 5));
        let _ = sim.run_slot(&[100.0]);
        // 10 pods × 600 s = 10/6 pod-hours × 0.16 $/h
        assert!((sim.total_cost() - 10.0 / 6.0 * 0.16).abs() < 1e-9);
    }

    #[test]
    fn conservation_no_drops() {
        // tuples in = processed + buffered (identity h chain, no drops)
        let mut sim = quiet_sim(two_op_app(100.0), Deployment::uniform(2, 1));
        let offered_total = 250.0 * 600.0 * 3.0;
        for _ in 0..3 {
            let _ = sim.run_slot(&[250.0]);
        }
        let balance = sim.total_processed() + sim.buffers().iter().sum::<f64>();
        assert!(
            (balance - offered_total).abs() / offered_total < 1e-6,
            "in={offered_total} out+buf={balance}"
        );
        assert_eq!(sim.total_dropped(), 0.0);
    }

    #[test]
    fn overflow_drops_tuples() {
        let app = two_op_app(10.0);
        let sim_cfg = SimConfig {
            buffer_capacity: 1000.0,
            ..Default::default()
        };
        let mut sim = FluidSim::new(
            app,
            ClusterConfig::default(),
            sim_cfg,
            NoiseConfig::none(),
            1,
            Deployment::uniform(2, 1),
        )
        .unwrap();
        let s = sim.run_slot(&[500.0]); // huge overload, tiny buffer
        assert!(s.dropped_tuples > 0.0);
        assert!(sim.buffers()[0] <= 1000.0 + 1e-9);
    }

    #[test]
    fn noisy_capacity_samples_center_on_truth() {
        let app = two_op_app(100.0);
        let mut sim = FluidSim::new(
            app,
            ClusterConfig::default(),
            SimConfig::default(),
            NoiseConfig::default(),
            42,
            Deployment::uniform(2, 3),
        )
        .unwrap();
        let mut samples = Vec::new();
        for _ in 0..30 {
            let s = sim.run_slot(&[200.0]);
            samples.push(s.operators[0].capacity_sample);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (mean - 300.0).abs() < 25.0,
            "mean sample {mean} vs true 300"
        );
    }

    #[test]
    fn ideal_throughput_oracle() {
        let sim = quiet_sim(two_op_app(100.0), Deployment::uniform(2, 2));
        assert_eq!(sim.ideal_throughput(&[500.0]).unwrap(), 200.0);
        assert_eq!(sim.ideal_throughput(&[150.0]).unwrap(), 150.0);
    }

    #[test]
    fn time_advances_by_slot() {
        let mut sim = quiet_sim(two_op_app(100.0), Deployment::uniform(2, 2));
        let s1 = sim.run_slot(&[100.0]);
        assert_eq!(s1.sim_time_secs, 600.0);
        let s2 = sim.run_slot(&[100.0]);
        assert_eq!(s2.sim_time_secs, 1200.0);
        assert_eq!(s2.t, 1);
    }
}
