//! The experiment harness: the [`Autoscaler`] decision interface shared by
//! Dragster and every baseline, arrival processes, and the slot loop of
//! Algorithm 1 (launch → observe → decide → deploy → repeat).

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointStore, RetrySnapshot};
use crate::cluster::Deployment;
use crate::error::SimError;
use crate::faults::{ControllerFaultDriver, FaultEvent, FaultKind};
use crate::fluid::FluidSim;
use crate::journal::{DecisionJournal, JournalError, JournalRecord, ReconfigOutcome};
use crate::json::Json;
use crate::metrics::SlotMetrics;
use crate::sanitize::{MetricSanitizer, SanitizeConfig};
use serde::{Deserialize, Serialize};

/// Time-varying offered load: rates per source for decision slot `t`.
pub trait ArrivalProcess {
    fn rates(&mut self, t: usize) -> Vec<f64>;
}

/// Constant offered load.
#[derive(Clone, Debug)]
pub struct ConstantArrival(pub Vec<f64>);

impl ArrivalProcess for ConstantArrival {
    fn rates(&mut self, _t: usize) -> Vec<f64> {
        self.0.clone()
    }
}

impl<F: FnMut(usize) -> Vec<f64>> ArrivalProcess for F {
    fn rates(&mut self, t: usize) -> Vec<f64> {
        self(t)
    }
}

/// A dynamic resource allocation policy. Implementations see exactly what
/// the paper's Job Monitor exposes — one [`SlotMetrics`] per slot — and
/// return the deployment for the *next* slot (step 5 of Algorithm 1).
pub trait Autoscaler {
    /// Scheme name for reports ("Dhalion", "Dragster saddle point", …).
    fn name(&self) -> String;

    /// Decide the next deployment after observing slot `t`.
    ///
    /// # Errors
    /// [`SimError::Policy`] (or a wrapped numeric/topology error) when the
    /// policy cannot produce a decision; the harness aborts the run and
    /// surfaces the error with the partial context intact.
    fn decide(
        &mut self,
        t: usize,
        metrics: &SlotMetrics,
        current: &Deployment,
    ) -> Result<Deployment, SimError>;

    /// Export all learner state for a controller checkpoint
    /// ([`crate::checkpoint::Checkpoint::scaler`]). `None` (the default)
    /// declares the policy stateless: a crash loses nothing, and recovery
    /// restores it via [`Autoscaler::reset_state`] plus journal replay.
    /// Stateful policies must export *everything* their `decide` depends
    /// on (learned models, duals, RNG positions) bit-exactly.
    fn export_state(&self) -> Option<Json> {
        None
    }

    /// Rebuild learner state from a checkpoint previously produced by
    /// [`Autoscaler::export_state`] on the same scheme.
    ///
    /// # Errors
    /// [`SimError::Policy`] when the state is malformed or the policy is
    /// stateless (the default) — the recovery harness then routes to the
    /// degraded fallback instead of trusting a half-restored controller.
    fn import_state(&mut self, _state: &Json) -> Result<(), SimError> {
        Err(SimError::Policy {
            scheme: self.name(),
            reason: "policy does not support checkpoint state import".to_string(),
        })
    }

    /// Forget all learned state, returning to the fresh-start condition.
    /// The default is a no-op, which is exactly right for stateless
    /// policies; stateful ones must override it — the degraded-fallback
    /// path relies on it to guarantee a *clean* cold start rather than a
    /// half-poisoned one.
    fn reset_state(&mut self) {}
}

/// Full record of one experiment run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub scheme: String,
    pub slots: Vec<SlotMetrics>,
    /// Deployment in effect during each slot.
    pub deployments: Vec<Deployment>,
    /// Oracle: the noise-free steady-state throughput the deployed
    /// configuration would achieve under that slot's offered load. Used
    /// for the "within 10 % of optimal" convergence criterion — not
    /// visible to autoscalers.
    pub ideal_throughput: Vec<f64>,
    /// Every fault the chaos layer injected during the run, in slot order.
    /// Empty for unfaulted runs, so legacy traces deserialize unchanged.
    #[serde(default)]
    pub fault_events: Vec<FaultEvent>,
    /// Reconfiguration attempts that failed (checkpoint-restore faults the
    /// retry loop absorbed).
    #[serde(default)]
    pub reconfig_failures: usize,
    /// Slots during which the harness held the last-known-good deployment
    /// because the retry backoff had not yet elapsed.
    #[serde(default)]
    pub held_slots: usize,
    /// Every control-plane recovery transition, in slot order (crash →
    /// restored/degraded → resumed). Empty for runs without controller
    /// faults, so legacy traces deserialize and compare unchanged.
    #[serde(default)]
    pub recovery_events: Vec<RecoveryEvent>,
    /// Controller crashes absorbed by the recovery harness.
    #[serde(default)]
    pub controller_crashes: usize,
    /// Slots spent in the degraded hold-last-deployment fallback (the
    /// GP-rewarm window after an unrecoverable crash).
    #[serde(default)]
    pub fallback_slots: usize,
}

impl Trace {
    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot was recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total tuples delivered to the sink.
    pub fn total_processed(&self) -> f64 {
        self.slots.iter().map(|s| s.processed_tuples).sum()
    }

    /// Total dollars spent.
    pub fn total_cost(&self) -> f64 {
        self.slots.iter().map(|s| s.cost_dollars).sum()
    }

    /// Dollars per 10⁹ processed tuples (the paper's Table 2/3 metric).
    pub fn cost_per_billion_tuples(&self) -> f64 {
        let tuples = self.total_processed();
        if tuples == 0.0 {
            return f64::INFINITY;
        }
        self.total_cost() / (tuples / 1e9)
    }

    /// Mean measured throughput over a slot range.
    pub fn mean_throughput(&self, range: std::ops::Range<usize>) -> f64 {
        let xs = self.slots.get(range).unwrap_or_default();
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().map(|s| s.throughput).sum::<f64>() / xs.len() as f64
    }

    /// First slot index from which the deployed configuration stays within
    /// `tol` (e.g. 0.1) of the oracle-optimal throughput `opt[t]` for the
    /// rest of `window` — the paper's convergence-time definition
    /// ("within 10 % of the optimal throughput"). Returns `None` if never.
    pub fn convergence_slot(
        &self,
        opt: &[f64],
        tol: f64,
        window: std::ops::Range<usize>,
    ) -> Option<usize> {
        assert_eq!(opt.len(), self.ideal_throughput.len());
        let near = |t: usize| match (self.ideal_throughput.get(t), opt.get(t)) {
            (Some(&ideal), Some(&o)) => ideal >= (1.0 - tol) * o - 1e-9,
            _ => false,
        };
        let end = window.end.min(self.ideal_throughput.len());
        (window.start..end).find(|&s| (s..end).all(near))
    }

    /// Mean pods over a slot range (resource footprint).
    pub fn mean_pods(&self, range: std::ops::Range<usize>) -> f64 {
        let xs = self.slots.get(range).unwrap_or_default();
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().map(|s| s.pods as f64).sum::<f64>() / xs.len() as f64
    }

    /// Number of slots that began with a reconfiguration pause.
    pub fn reconfigurations(&self) -> usize {
        self.slots.iter().filter(|s| s.reconfigured).count()
    }

    /// A throughput percentile over the whole run (p in [0, 100]).
    pub fn throughput_percentile(&self, p: f64) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        let mut xs: Vec<f64> = self.slots.iter().map(|s| s.throughput).collect();
        xs.sort_by(f64::total_cmp);
        let idx =
            crate::convert::f64_to_usize_saturating(((p / 100.0) * (xs.len() - 1) as f64).round());
        xs.get(idx.min(xs.len() - 1)).copied().unwrap_or(0.0)
    }

    /// Worst end-to-end Little's-law latency estimate across slots in a
    /// range (seconds).
    pub fn max_latency_estimate(&self, range: std::ops::Range<usize>) -> f64 {
        self.slots
            .get(range)
            .unwrap_or_default()
            .iter()
            .map(|s| s.latency_estimate_secs())
            .fold(0.0, f64::max)
    }

    /// Convergence time in minutes given the slot length.
    pub fn convergence_minutes(
        &self,
        opt: &[f64],
        tol: f64,
        window: std::ops::Range<usize>,
        slot_secs: f64,
    ) -> Option<f64> {
        self.convergence_slot(opt, tol, window.clone())
            .map(|s| (s + 1 - window.start) as f64 * slot_secs / 60.0)
    }
}

/// Retry policy for failed reconfigurations: exponential backoff measured
/// in decision slots. After the `k`-th consecutive failure the harness
/// waits `min(base_backoff_slots × 2^(k−1), max_backoff_slots)` slots
/// before re-attempting, holding the last-known-good deployment meanwhile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Backoff after the first failure (slots). Values < 1 behave as 1.
    pub base_backoff_slots: usize,
    /// Backoff ceiling (slots).
    pub max_backoff_slots: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_backoff_slots: 1,
            max_backoff_slots: 8,
        }
    }
}

impl RetryPolicy {
    /// Backoff (in slots) after `consecutive_failures ≥ 1` failures.
    ///
    /// The doubling saturates instead of shifting bits off the word, and
    /// the result is capped *strictly* at `max_backoff_slots` — a zero
    /// cap genuinely means "retry next slot", and a huge base can no
    /// longer wrap around to a tiny backoff.
    pub fn backoff_slots(&self, consecutive_failures: usize) -> usize {
        let k = consecutive_failures.max(1);
        let base = self.base_backoff_slots.max(1);
        let exp = u32::try_from((k - 1).min(63)).unwrap_or(63);
        let factor = 1usize.checked_shl(exp).unwrap_or(usize::MAX);
        base.saturating_mul(factor).min(self.max_backoff_slots)
    }
}

/// Harness knobs for [`run_experiment_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOptions {
    /// Retry-with-backoff for failed reconfigurations.
    pub retry: RetryPolicy,
    /// Metric sanitization applied before any autoscaler sees a snapshot.
    pub sanitize: SanitizeConfig,
}

/// Run one experiment: `slots` decision slots of Algorithm 1 with default
/// [`ExperimentOptions`]. The scaler's proposal is clamped to the task
/// range; a proposal violating the pod budget is projected by decrementing
/// the largest allocations first (mirroring how HPA would refuse to scale
/// past quota).
/// # Errors
/// Any [`SimError`] raised by the oracle, the policy, or reconfiguration
/// validation; the trace accumulated so far is dropped with the error.
/// Injected reconfiguration *faults* ([`SimError::ReconfigFailed`]) are
/// absorbed by the retry loop and never surface here.
pub fn run_experiment(
    sim: &mut FluidSim,
    scaler: &mut dyn Autoscaler,
    arrivals: &mut dyn ArrivalProcess,
    slots: usize,
) -> Result<Trace, SimError> {
    run_experiment_with(sim, scaler, arrivals, slots, ExperimentOptions::default())
}

/// [`run_experiment`] with explicit [`ExperimentOptions`].
///
/// Degradation policy (graceful, never aborting on injected faults):
///
/// 1. every raw snapshot passes through a [`MetricSanitizer`] before the
///    autoscaler (and the trace) sees it — faulted traces never contain a
///    NaN or negative metric;
/// 2. a failed reconfiguration ([`SimError::ReconfigFailed`]) leaves the
///    simulator on its last-known-good deployment; the harness counts the
///    failure, backs off exponentially ([`RetryPolicy`]), and re-proposes
///    once the backoff elapses instead of aborting the run;
/// 3. fault events drained from the engine are appended to
///    [`Trace::fault_events`] so recovery analysis can line dips up with
///    their causes.
///
/// # Errors
/// Any non-fault [`SimError`] raised by the oracle, the policy, or
/// reconfiguration validation.
pub fn run_experiment_with(
    sim: &mut FluidSim,
    scaler: &mut dyn Autoscaler,
    arrivals: &mut dyn ArrivalProcess,
    slots: usize,
    opts: ExperimentOptions,
) -> Result<Trace, SimError> {
    let mut trace = Trace {
        scheme: scaler.name(),
        ..Default::default()
    };
    let mut sanitizer = MetricSanitizer::new(opts.sanitize);
    let mut consecutive_failures = 0usize;
    let mut next_attempt = 0usize;
    for t in 0..slots {
        let rates = arrivals.rates(t);
        trace.deployments.push(sim.deployment().clone());
        trace.ideal_throughput.push(sim.ideal_throughput(&rates)?);
        let metrics = sanitizer.sanitize(sim.run_slot(&rates));
        let proposal = scaler.decide(t, &metrics, sim.deployment())?;
        let feasible = project_to_budget(
            proposal.clamped(sim.cluster().max_tasks_per_operator),
            sim.cluster().budget_pods,
        );
        if t >= next_attempt {
            match sim.reconfigure(feasible) {
                Ok(()) => consecutive_failures = 0,
                Err(SimError::ReconfigFailed { .. }) => {
                    consecutive_failures += 1;
                    trace.reconfig_failures += 1;
                    next_attempt = t + opts.retry.backoff_slots(consecutive_failures);
                }
                Err(e) => return Err(e),
            }
        } else {
            trace.held_slots += 1;
        }
        trace.fault_events.extend(sim.drain_fault_events());
        trace.slots.push(metrics);
    }
    Ok(trace)
}

// ---------------------------------------------------------------------------
// Crash-safe controller runtime.
// ---------------------------------------------------------------------------

/// Knobs for the crash-recovery harness ([`run_experiment_recoverable`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryOptions {
    /// Checkpoint cadence in slots (a checkpoint is written after every
    /// slot `t` with `t % checkpoint_every == 0`). Values < 1 behave as 1.
    pub checkpoint_every: usize,
    /// Staleness bound `m`: a checkpoint older than this many slots at
    /// restore time is rejected ([`CheckpointError::Stale`]) and the run
    /// degrades instead of resuming from ancient state.
    pub max_checkpoint_age_slots: usize,
    /// Degraded-fallback window: after an unrecoverable crash the harness
    /// holds the current deployment for this many slots while the freshly
    /// reset learner re-warms on live metrics, then resumes following it.
    pub rewarm_slots: usize,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            checkpoint_every: 1,
            max_checkpoint_age_slots: 8,
            rewarm_slots: 6,
        }
    }
}

/// Why recovery routed to the degraded fallback instead of restoring.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// No checkpoint had ever been written.
    MissingCheckpoint,
    /// The newest checkpoint blob failed its checksum (torn write).
    TornCheckpoint,
    /// The blob parsed but did not decode to a valid checkpoint.
    MalformedCheckpoint,
    /// The newest valid checkpoint exceeded the staleness bound.
    StaleCheckpoint,
    /// The checkpoint was written by a different autoscaler scheme.
    SchemeMismatch,
    /// The policy rejected the checkpointed learner state.
    ImportFailed,
    /// A journal record needed for replay failed its checksum.
    JournalCorrupt,
    /// A slot needed for replay had no journal record.
    JournalGap,
    /// Replay reproduced a different decision than the journal recorded —
    /// the restored state cannot be trusted.
    ReplayDivergence,
}

/// What the recovery harness did at one slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// The controller process crashed, losing all in-memory state.
    Crash,
    /// The checkpoint validated; journal replay rebuilt the exact
    /// pre-crash state (`replayed_slots` records on top of the snapshot).
    Restored {
        checkpoint_slot: usize,
        replayed_slots: usize,
    },
    /// Restore was impossible; the learner was reset and the deployment
    /// held for the rewarm window.
    Degraded { reason: DegradeReason },
    /// The rewarm window elapsed; the harness resumed following the
    /// learner's decisions.
    Resumed,
}

/// One recovery transition, recorded into [`Trace::recovery_events`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    pub slot: usize,
    pub action: RecoveryAction,
}

/// Result of a restore attempt: the rebuilt harness-side state, or the
/// reason to degrade. Hard policy errors (a `decide` failure during
/// replay) abort the run like they would in the live loop.
struct RestoredState {
    sanitizer: MetricSanitizer,
    consecutive_failures: usize,
    next_attempt: usize,
    checkpoint_slot: usize,
    replayed_slots: usize,
}

fn degrade_reason_of(e: &CheckpointError) -> DegradeReason {
    match e {
        CheckpointError::Missing => DegradeReason::MissingCheckpoint,
        CheckpointError::Torn { .. } => DegradeReason::TornCheckpoint,
        CheckpointError::Malformed { .. } => DegradeReason::MalformedCheckpoint,
        CheckpointError::Stale { .. } => DegradeReason::StaleCheckpoint,
    }
}

/// Restore-and-replay: validate the newest checkpoint, import the learner
/// state, and replay the journal records up to (excluding) `crash_slot`.
/// Returns `Ok(Err(reason))` when the run must degrade, `Err(e)` only for
/// hard policy errors.
#[allow(clippy::too_many_arguments)]
fn try_restore(
    store: &CheckpointStore,
    journal: &DecisionJournal,
    scaler: &mut dyn Autoscaler,
    crash_slot: usize,
    opts: &ExperimentOptions,
    rec: &RecoveryOptions,
    max_tasks: usize,
    budget: Option<usize>,
) -> Result<Result<RestoredState, DegradeReason>, SimError> {
    let ckpt: Checkpoint = match store.load_validated(crash_slot, rec.max_checkpoint_age_slots) {
        Ok(c) => c,
        Err(e) => return Ok(Err(degrade_reason_of(&e))),
    };
    if ckpt.scheme != scaler.name() {
        return Ok(Err(DegradeReason::SchemeMismatch));
    }
    match &ckpt.scaler {
        Some(state) => {
            if scaler.import_state(state).is_err() {
                return Ok(Err(DegradeReason::ImportFailed));
            }
        }
        // A stateless policy's full state *is* the fresh state.
        None => scaler.reset_state(),
    }
    let records = match journal.replay_range(ckpt.slot + 1, crash_slot) {
        Ok(r) => r,
        Err(JournalError::Corrupt { .. }) => return Ok(Err(DegradeReason::JournalCorrupt)),
        Err(JournalError::Gap { .. }) => return Ok(Err(DegradeReason::JournalGap)),
    };
    let mut sanitizer = MetricSanitizer::from_snapshot(ckpt.sanitizer.clone());
    let mut consecutive_failures = ckpt.retry.consecutive_failures;
    let mut next_attempt = ckpt.retry.next_attempt;
    let replayed_slots = records.len();
    for r in &records {
        let metrics = sanitizer.sanitize(r.raw.clone());
        let before = Deployment {
            tasks: r.deployment_before.clone(),
        };
        let proposal = scaler.decide(r.t, &metrics, &before)?;
        let feasible = project_to_budget(proposal.clamped(max_tasks), budget);
        if feasible.tasks != r.decided {
            // The journal is the ground truth; a divergent replay means
            // the restored learner state is wrong.
            return Ok(Err(DegradeReason::ReplayDivergence));
        }
        match r.outcome {
            ReconfigOutcome::Applied => consecutive_failures = 0,
            ReconfigOutcome::Failed => {
                consecutive_failures += 1;
                next_attempt = r.t + opts.retry.backoff_slots(consecutive_failures);
            }
            ReconfigOutcome::Held => {}
        }
    }
    Ok(Ok(RestoredState {
        sanitizer,
        consecutive_failures,
        next_attempt,
        checkpoint_slot: ckpt.slot,
        replayed_slots,
    }))
}

/// [`run_experiment_with`] under the crash-safe controller runtime.
///
/// In addition to the graceful-degradation policy of
/// [`run_experiment_with`], the harness maintains the crash-tolerance
/// machinery of DESIGN §10:
///
/// 1. after every slot it appends a checksummed [`JournalRecord`] (raw
///    pre-sanitize metrics + decision + reconfiguration outcome) to the
///    [`DecisionJournal`], and on the checkpoint cadence writes a
///    [`Checkpoint`] of *all* controller state — the autoscaler's
///    exported learner state, sanitizer history, and retry position;
/// 2. control-plane faults from the plan's controller kinds
///    ([`FaultKind::ControllerCrash`], [`FaultKind::CheckpointCorrupt`],
///    [`FaultKind::CheckpointStale`], plus the stochastic
///    `controller_crash_prob`) are driven on a dedicated salted RNG
///    stream, so layering them onto data-plane chaos leaves the engine
///    realization bit-identical;
/// 3. on a crash the harness restores the newest checkpoint and replays
///    the journal to the crash point — provably bit-identical to the
///    uninterrupted run (`tests/recovery.rs`) — and when the checkpoint
///    does not validate (torn, stale, missing, foreign, divergent) it
///    degrades: learner reset, deployment held for
///    [`RecoveryOptions::rewarm_slots`] slots, then resumes. Every
///    transition lands in [`Trace::recovery_events`].
///
/// With an inert fault plan this runs the *exact* decision sequence of
/// [`run_experiment_with`] (checkpointing and journaling never mutate
/// controller state), so the two produce equal traces.
///
/// # Errors
/// Any non-fault [`SimError`] raised by the oracle, the policy (live or
/// during replay), or reconfiguration validation.
pub fn run_experiment_recoverable(
    sim: &mut FluidSim,
    scaler: &mut dyn Autoscaler,
    arrivals: &mut dyn ArrivalProcess,
    slots: usize,
    opts: ExperimentOptions,
    rec: RecoveryOptions,
) -> Result<Trace, SimError> {
    let mut trace = Trace {
        scheme: scaler.name(),
        ..Default::default()
    };
    let mut sanitizer = MetricSanitizer::new(opts.sanitize);
    let mut consecutive_failures = 0usize;
    let mut next_attempt = 0usize;
    let mut store = CheckpointStore::new();
    let mut journal = DecisionJournal::new();
    let mut driver = ControllerFaultDriver::new(sim.fault_plan().clone(), sim.seed());
    let checkpoint_every = rec.checkpoint_every.max(1);
    // End of the degraded-fallback window, when active.
    let mut fallback_until: Option<usize> = None;
    for t in 0..slots {
        // -- control plane: faults fire at the top of the slot ------------
        let cf = driver.begin_slot(t);
        if cf.corrupt_checkpoint {
            store.corrupt_latest();
            trace.fault_events.push(FaultEvent {
                slot: t,
                kind: FaultKind::CheckpointCorrupt,
                operator: None,
                severity: 0.0,
            });
        }
        if cf.crash {
            trace.controller_crashes += 1;
            trace.fault_events.push(FaultEvent {
                slot: t,
                kind: FaultKind::ControllerCrash,
                operator: None,
                severity: 0.0,
            });
            trace.recovery_events.push(RecoveryEvent {
                slot: t,
                action: RecoveryAction::Crash,
            });
            let max_tasks = sim.cluster().max_tasks_per_operator;
            let budget = sim.cluster().budget_pods;
            match try_restore(&store, &journal, scaler, t, &opts, &rec, max_tasks, budget)? {
                Ok(restored) => {
                    sanitizer = restored.sanitizer;
                    consecutive_failures = restored.consecutive_failures;
                    next_attempt = restored.next_attempt;
                    fallback_until = None;
                    trace.recovery_events.push(RecoveryEvent {
                        slot: t,
                        action: RecoveryAction::Restored {
                            checkpoint_slot: restored.checkpoint_slot,
                            replayed_slots: restored.replayed_slots,
                        },
                    });
                }
                Err(reason) => {
                    // Unrecoverable: clean cold start + hold the current
                    // deployment while the learner re-warms.
                    scaler.reset_state();
                    sanitizer = MetricSanitizer::new(opts.sanitize);
                    consecutive_failures = 0;
                    next_attempt = 0;
                    fallback_until = Some(t + rec.rewarm_slots);
                    trace.recovery_events.push(RecoveryEvent {
                        slot: t,
                        action: RecoveryAction::Degraded { reason },
                    });
                }
            }
        }
        if let Some(until) = fallback_until {
            if t >= until {
                fallback_until = None;
                trace.recovery_events.push(RecoveryEvent {
                    slot: t,
                    action: RecoveryAction::Resumed,
                });
            }
        }

        // -- data plane: identical ordering to `run_experiment_with` ------
        let rates = arrivals.rates(t);
        let deployment_before = sim.deployment().clone();
        trace.deployments.push(deployment_before.clone());
        trace.ideal_throughput.push(sim.ideal_throughput(&rates)?);
        let raw = sim.run_slot(&rates);
        let metrics = sanitizer.sanitize(raw.clone());
        // `decide` runs even during fallback: the freshly reset learner
        // re-warms on live metrics while its proposals are held back.
        let proposal = scaler.decide(t, &metrics, sim.deployment())?;
        let feasible = project_to_budget(
            proposal.clamped(sim.cluster().max_tasks_per_operator),
            sim.cluster().budget_pods,
        );
        let outcome = if fallback_until.is_some() {
            trace.fallback_slots += 1;
            ReconfigOutcome::Held
        } else if t >= next_attempt {
            match sim.reconfigure(feasible.clone()) {
                Ok(()) => {
                    consecutive_failures = 0;
                    ReconfigOutcome::Applied
                }
                Err(SimError::ReconfigFailed { .. }) => {
                    consecutive_failures += 1;
                    trace.reconfig_failures += 1;
                    next_attempt = t + opts.retry.backoff_slots(consecutive_failures);
                    ReconfigOutcome::Failed
                }
                Err(e) => return Err(e),
            }
        } else {
            trace.held_slots += 1;
            ReconfigOutcome::Held
        };
        trace.fault_events.extend(sim.drain_fault_events());
        trace.slots.push(metrics);

        // -- durability: journal the slot, checkpoint on cadence ----------
        journal.append(&JournalRecord {
            t,
            raw,
            deployment_before: deployment_before.tasks,
            decided: feasible.tasks,
            outcome,
        });
        if t % checkpoint_every == 0 {
            if cf.suppress_checkpoint {
                trace.fault_events.push(FaultEvent {
                    slot: t,
                    kind: FaultKind::CheckpointStale,
                    operator: None,
                    severity: 0.0,
                });
            } else {
                store.write(&Checkpoint {
                    version: crate::checkpoint::CHECKPOINT_VERSION,
                    slot: t,
                    scheme: trace.scheme.clone(),
                    deployment: sim.deployment().tasks.clone(),
                    scaler: scaler.export_state(),
                    sanitizer: sanitizer.snapshot(),
                    retry: RetrySnapshot {
                        consecutive_failures,
                        next_attempt,
                    },
                });
            }
        }
    }
    Ok(trace)
}

/// Decrement the largest allocations until the total-pod budget holds.
/// Keeps every operator at ≥ 1 task.
pub fn project_to_budget(mut d: Deployment, budget: Option<usize>) -> Deployment {
    let Some(b) = budget else { return d };
    let b = b.max(d.len()); // at least one task per operator
    while d.total_pods() > b {
        // A positive pod total implies a non-empty task vector.
        let Some((imax, _)) = d.tasks.iter().enumerate().max_by_key(|(_, &t)| t) else {
            return d;
        };
        // The budget floor (`b >= d.len()`) guarantees the largest
        // allocation is ≥ 2 here; the guard keeps the loop total anyway.
        match d.tasks.get_mut(imax) {
            Some(t) if *t > 1 => *t -= 1,
            _ => return d,
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::{Application, CapacityModel};
    use crate::cluster::ClusterConfig;
    use crate::fluid::SimConfig;
    use crate::noise::NoiseConfig;
    use dragster_dag::TopologyBuilder;

    fn app() -> Application {
        let topo = TopologyBuilder::new()
            .source("s")
            .operator("a")
            .operator("b")
            .sink("k")
            .edge("s", "a")
            .edge("a", "b")
            .edge("b", "k")
            .build()
            .unwrap();
        Application::new(
            topo,
            vec![
                CapacityModel::Linear { per_task: 100.0 },
                CapacityModel::Linear { per_task: 100.0 },
            ],
        )
        .unwrap()
    }

    /// Scales everything up by one task per slot.
    struct GreedyUp;

    impl Autoscaler for GreedyUp {
        fn name(&self) -> String {
            "greedy-up".into()
        }

        fn decide(
            &mut self,
            _t: usize,
            _m: &SlotMetrics,
            cur: &Deployment,
        ) -> Result<Deployment, SimError> {
            Ok(Deployment {
                tasks: cur.tasks.iter().map(|t| t + 1).collect(),
            })
        }
    }

    /// Never changes anything.
    struct Static;

    impl Autoscaler for Static {
        fn name(&self) -> String {
            "static".into()
        }

        fn decide(
            &mut self,
            _t: usize,
            _m: &SlotMetrics,
            cur: &Deployment,
        ) -> Result<Deployment, SimError> {
            Ok(cur.clone())
        }
    }

    fn make_sim(budget: Option<usize>) -> FluidSim {
        FluidSim::new(
            app(),
            ClusterConfig {
                budget_pods: budget,
                ..Default::default()
            },
            SimConfig::default(),
            NoiseConfig::none(),
            7,
            Deployment::uniform(2, 1),
        )
        .unwrap()
    }

    #[test]
    fn run_records_every_slot() {
        let mut sim = make_sim(None);
        let mut arr = ConstantArrival(vec![250.0]);
        let trace = run_experiment(&mut sim, &mut Static, &mut arr, 5).unwrap();
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.deployments.len(), 5);
        assert_eq!(trace.scheme, "static");
        assert!(trace.total_cost() > 0.0);
    }

    #[test]
    fn greedy_up_scales_and_improves() {
        let mut sim = make_sim(None);
        let mut arr = ConstantArrival(vec![900.0]);
        let trace = run_experiment(&mut sim, &mut GreedyUp, &mut arr, 10).unwrap();
        // deployments grow 1,2,3,… (clamped at 10)
        assert_eq!(trace.deployments[0].tasks, vec![1, 1]);
        assert_eq!(trace.deployments[5].tasks, vec![6, 6]);
        assert!(trace.slots[9].throughput > trace.slots[0].throughput);
    }

    #[test]
    fn budget_projection_applies() {
        let mut sim = make_sim(Some(8));
        let mut arr = ConstantArrival(vec![900.0]);
        let trace = run_experiment(&mut sim, &mut GreedyUp, &mut arr, 12).unwrap();
        for d in &trace.deployments {
            assert!(d.total_pods() <= 8, "budget violated: {d}");
        }
    }

    #[test]
    fn project_to_budget_decrements_largest() {
        let d = Deployment {
            tasks: vec![9, 2, 5],
        };
        let p = project_to_budget(d, Some(10));
        assert_eq!(p.total_pods(), 10);
        assert_eq!(p.tasks, vec![4, 2, 4]);
        // keeps ≥1 per operator even under an absurd budget
        let q = project_to_budget(Deployment { tasks: vec![5, 5] }, Some(1));
        assert_eq!(q.tasks, vec![1, 1]);
    }

    #[test]
    fn convergence_slot_finds_stable_point() {
        let mut trace = Trace::default();
        // fabricate ideal-throughput history: 50, 80, 95, 95, 95 vs opt 100
        for v in [50.0, 80.0, 95.0, 95.0, 95.0] {
            trace.ideal_throughput.push(v);
        }
        let opt = vec![100.0; 5];
        assert_eq!(trace.convergence_slot(&opt, 0.1, 0..5), Some(2));
        assert_eq!(trace.convergence_slot(&opt, 0.01, 0..5), None);
        // minutes: slots are 600 s
        assert_eq!(
            trace.convergence_minutes(&opt, 0.1, 0..5, 600.0),
            Some(30.0)
        );
    }

    #[test]
    fn convergence_requires_stability() {
        let mut trace = Trace::default();
        for v in [95.0, 50.0, 95.0, 95.0] {
            trace.ideal_throughput.push(v);
        }
        let opt = vec![100.0; 4];
        // slot 0 is within 10 % but slot 1 regresses ⇒ convergence at 2.
        assert_eq!(trace.convergence_slot(&opt, 0.1, 0..4), Some(2));
    }

    #[test]
    fn closure_is_an_arrival_process() {
        let mut sim = make_sim(None);
        let mut arr = |t: usize| vec![if t < 2 { 100.0 } else { 300.0 }];
        let trace = run_experiment(&mut sim, &mut Static, &mut arr, 4).unwrap();
        assert_eq!(trace.slots[0].source_rates, vec![100.0]);
        assert_eq!(trace.slots[3].source_rates, vec![300.0]);
    }

    #[test]
    fn trace_analysis_helpers() {
        let mut sim = make_sim(None);
        let mut arr = ConstantArrival(vec![500.0]);
        let trace = run_experiment(&mut sim, &mut GreedyUp, &mut arr, 6).unwrap();
        assert!(trace.mean_pods(0..6) > 2.0);
        assert!(trace.reconfigurations() >= 4);
        let p50 = trace.throughput_percentile(50.0);
        let p100 = trace.throughput_percentile(100.0);
        assert!(p100 >= p50);
        assert!(trace.max_latency_estimate(0..6) >= 0.0);
        // empty ranges are safe
        assert_eq!(trace.mean_pods(3..3), 0.0);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_slots(1), 1);
        assert_eq!(p.backoff_slots(2), 2);
        assert_eq!(p.backoff_slots(3), 4);
        assert_eq!(p.backoff_slots(4), 8);
        assert_eq!(p.backoff_slots(5), 8); // capped
        assert_eq!(p.backoff_slots(60), 8); // shift is clamped, no overflow
        let never_zero = RetryPolicy {
            base_backoff_slots: 0,
            max_backoff_slots: 4,
        };
        assert_eq!(never_zero.backoff_slots(1), 1);
    }

    #[test]
    fn backoff_cap_is_strict_even_for_degenerate_configs() {
        // max = 0 means "retry every slot": the cap must win over the
        // implicit base >= 1 floor.
        let zero_cap = RetryPolicy {
            base_backoff_slots: 3,
            max_backoff_slots: 0,
        };
        for k in [1, 2, 10, 100] {
            assert_eq!(zero_cap.backoff_slots(k), 0);
        }
        // base = 0 doubles from an implicit floor of 1 and still caps.
        let zero_base = RetryPolicy {
            base_backoff_slots: 0,
            max_backoff_slots: 4,
        };
        assert_eq!(
            (1..=4)
                .map(|k| zero_base.backoff_slots(k))
                .collect::<Vec<_>>(),
            vec![1, 2, 4, 4]
        );
        // Huge base: doubling must saturate, never wrap past the cap.
        let huge_base = RetryPolicy {
            base_backoff_slots: usize::MAX,
            max_backoff_slots: 16,
        };
        assert_eq!(huge_base.backoff_slots(1), 16);
        assert_eq!(huge_base.backoff_slots(7), 16);
        let wrapping_base = RetryPolicy {
            base_backoff_slots: 1 << 60,
            max_backoff_slots: 32,
        };
        // Old code computed base << 10 with wrapping bits -> backoff 1.
        assert_eq!(wrapping_base.backoff_slots(11), 32);
        // Uncapped: saturates at usize::MAX instead of overflowing.
        let uncapped = RetryPolicy {
            base_backoff_slots: 2,
            max_backoff_slots: usize::MAX,
        };
        assert_eq!(uncapped.backoff_slots(200), usize::MAX);
    }

    #[test]
    fn reconfig_fault_is_retried_not_fatal() {
        use crate::faults::{FaultKind, FaultPlan, ScriptedFault};
        let plan = FaultPlan::none().with(ScriptedFault {
            slot: 1,
            kind: FaultKind::ReconfigFail,
            operator: None,
            severity: 1.0,
            duration_slots: 1,
        });
        let mut sim = make_sim(None).with_faults(plan);
        let mut arr = ConstantArrival(vec![900.0]);
        let trace = run_experiment(&mut sim, &mut GreedyUp, &mut arr, 6).unwrap();
        assert_eq!(trace.len(), 6, "run must complete despite the fault");
        assert_eq!(trace.reconfig_failures, 1);
        // slot 1's upscale was rejected: the deployment in effect during
        // slot 2 is still slot 1's (last-known-good held) …
        assert_eq!(trace.deployments[2], trace.deployments[1]);
        // … and the retry landed: later slots scale up again.
        assert!(trace.deployments[5].total_pods() > trace.deployments[2].total_pods());
        assert!(trace
            .fault_events
            .iter()
            .any(|e| e.kind == FaultKind::ReconfigFail));
    }

    #[test]
    fn persistent_reconfig_faults_back_off() {
        use crate::faults::{FaultKind, FaultPlan, FaultRates, ScriptedFault};
        // every reconfiguration attempt fails for the whole run
        let plan = FaultPlan {
            scripted: vec![ScriptedFault {
                slot: 0,
                kind: FaultKind::ReconfigFail,
                operator: None,
                severity: 1.0,
                duration_slots: 40,
            }],
            rates: FaultRates::default(),
        };
        let mut sim = make_sim(None).with_faults(plan);
        let mut arr = ConstantArrival(vec![900.0]);
        let trace = run_experiment(&mut sim, &mut GreedyUp, &mut arr, 16).unwrap();
        assert_eq!(trace.len(), 16);
        // attempts at t = 0, 1, 3, 7, 15 (backoff 1, 2, 4, 8, 8): 5 failures
        assert_eq!(trace.reconfig_failures, 5);
        assert_eq!(trace.held_slots, 16 - 5);
        // deployment never moved off the initial last-known-good
        assert!(trace.deployments.iter().all(|d| d.tasks == vec![1, 1]));
    }

    #[test]
    fn sanitized_metrics_reach_scaler_and_trace() {
        use crate::faults::{FaultPlan, FaultRates};
        let plan = FaultPlan {
            scripted: vec![],
            rates: FaultRates {
                metric_dropout_prob: 0.5,
                ..Default::default()
            },
        };
        let mut sim = make_sim(None).with_faults(plan);
        let mut arr = ConstantArrival(vec![250.0]);
        let trace = run_experiment(&mut sim, &mut Static, &mut arr, 10).unwrap();
        let degraded = trace
            .slots
            .iter()
            .flat_map(|s| &s.operators)
            .filter(|o| o.degraded)
            .count();
        assert!(degraded > 0, "dropouts must surface as degraded readings");
        for s in &trace.slots {
            for o in &s.operators {
                assert!(o.cpu_util.is_finite() && o.cpu_util >= 0.0);
                assert!(o.capacity_sample.is_finite() && o.capacity_sample >= 0.0);
            }
        }
    }

    #[test]
    fn cost_per_billion() {
        let mut trace = Trace::default();
        trace.slots.push(SlotMetrics {
            t: 0,
            sim_time_secs: 600.0,
            throughput: 1.0,
            processed_tuples: 5e8,
            dropped_tuples: 0.0,
            cost_dollars: 10.0,
            pods: 1,
            source_rates: vec![1.0],
            reconfigured: false,
            pause_secs: 0.0,
            operators: vec![],
        });
        assert!((trace.cost_per_billion_tuples() - 20.0).abs() < 1e-12);
    }
}
