//! The decision journal: an append-only, checksummed record of every
//! control-plane decision, written by the harness as slots complete.
//!
//! A checkpoint alone can only restore the controller to the last
//! snapshot; the journal closes the gap to the crash point. Each record
//! stores the slot's *raw pre-sanitize* metrics, the deployment the
//! decision saw, the post-projection decision, and the reconfiguration
//! outcome. A restarted controller replays the records after its
//! checkpoint slot — re-running `sanitize` and `decide` on the journaled
//! inputs — which deterministically rebuilds the exact learner and
//! sanitizer state at the crash point (the replay-identity guarantee
//! validated in `tests/recovery.rs`).
//!
//! Records are framed with the same FNV-1a seal as checkpoints
//! ([`crate::checkpoint::seal`]); a torn or missing record is detected at
//! replay time and routes recovery to the degraded fallback instead of
//! silently replaying wrong history.

use crate::checkpoint::{decode_slot_metrics, unseal, write_slot_metrics, CheckpointError};
use crate::json::{self, Json};
use crate::metrics::SlotMetrics;

/// What happened to the reconfiguration decided at a slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconfigOutcome {
    /// The decided deployment was applied.
    Applied,
    /// The attempt failed (injected fault); backoff advanced.
    Failed,
    /// No attempt was made (backoff window or degraded fallback hold).
    Held,
}

impl ReconfigOutcome {
    fn as_str(self) -> &'static str {
        match self {
            ReconfigOutcome::Applied => "applied",
            ReconfigOutcome::Failed => "failed",
            ReconfigOutcome::Held => "held",
        }
    }

    fn from_str(s: &str) -> Option<ReconfigOutcome> {
        match s {
            "applied" => Some(ReconfigOutcome::Applied),
            "failed" => Some(ReconfigOutcome::Failed),
            "held" => Some(ReconfigOutcome::Held),
            _ => None,
        }
    }
}

/// One slot's journal entry.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRecord {
    pub t: usize,
    /// Raw engine snapshot *before* sanitization — replay re-runs the
    /// sanitizer so its internal history is rebuilt exactly.
    pub raw: SlotMetrics,
    /// Deployment in effect when the decision was made.
    pub deployment_before: Vec<usize>,
    /// The decided (clamped + budget-projected) target deployment.
    pub decided: Vec<usize>,
    pub outcome: ReconfigOutcome,
}

/// Why a journal range could not be replayed. Like checkpoint failures,
/// these route recovery to the degraded fallback.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// A record failed its checksum or did not decode.
    Corrupt { index: usize, detail: String },
    /// A slot in the requested range has no record.
    Gap { slot: usize },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Corrupt { index, detail } => {
                write!(f, "journal record {index} corrupt: {detail}")
            }
            JournalError::Gap { slot } => {
                write!(f, "journal has no record for slot {slot}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl JournalRecord {
    /// Writes the record's JSON body into `out` without allocating —
    /// byte-identical to the [`Json`] tree this codec originally built
    /// (the journal appends every slot, so the tree construction was on
    /// the controller hot path).
    fn write_body(&self, out: &mut String) {
        out.push_str("{\"t\":");
        json::push_usize(self.t, out);
        out.push_str(",\"raw\":");
        write_slot_metrics(&self.raw, out);
        out.push_str(",\"deployment_before\":[");
        for (i, &x) in self.deployment_before.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_usize(x, out);
        }
        out.push_str("],\"decided\":[");
        for (i, &x) in self.decided.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_usize(x, out);
        }
        out.push_str("],\"outcome\":\"");
        json::escape_into(self.outcome.as_str(), out);
        out.push_str("\"}");
    }

    /// Serializes to a sealed line.
    pub fn encode(&self) -> String {
        let mut body = String::new();
        self.write_body(&mut body);
        let mut line = String::with_capacity(body.len() + 17);
        json::push_u64_hex(json::fnv1a64(body.as_bytes()), &mut line);
        line.push('\n');
        line.push_str(&body);
        line
    }

    /// Deserializes a sealed line.
    pub fn decode(line: &str) -> Result<JournalRecord, String> {
        let body = unseal(line)?;
        let j = json::parse_json(body)?;
        let field = |k: &str| format!("missing/invalid field `{k}`");
        Ok(JournalRecord {
            t: j.get("t")
                .and_then(Json::as_usize)
                .ok_or_else(|| field("t"))?,
            raw: decode_slot_metrics(j.get("raw").ok_or_else(|| field("raw"))?)
                .map_err(|e: CheckpointError| e.to_string())?,
            deployment_before: j
                .get("deployment_before")
                .and_then(json::usize_vec)
                .ok_or_else(|| field("deployment_before"))?,
            decided: j
                .get("decided")
                .and_then(json::usize_vec)
                .ok_or_else(|| field("decided"))?,
            outcome: j
                .get("outcome")
                .and_then(Json::as_str)
                .and_then(ReconfigOutcome::from_str)
                .ok_or_else(|| field("outcome"))?,
        })
    }
}

/// The append-only journal. In-memory (the simulator's "durable" log) —
/// one sealed line per slot, never rewritten.
#[derive(Clone, Debug, Default)]
pub struct DecisionJournal {
    lines: Vec<String>,
    /// Reusable body buffer for [`DecisionJournal::append`]; never part
    /// of the log itself.
    scratch: String,
}

impl DecisionJournal {
    pub fn new() -> DecisionJournal {
        DecisionJournal::default()
    }

    /// Appends one slot's record. The only allocation is the sealed line
    /// itself (the durable log entry); the body is staged in a reused
    /// scratch buffer.
    pub fn append(&mut self, record: &JournalRecord) {
        self.scratch.clear();
        record.write_body(&mut self.scratch);
        let mut line = String::with_capacity(self.scratch.len() + 17);
        json::push_u64_hex(json::fnv1a64(self.scratch.as_bytes()), &mut line);
        line.push('\n');
        line.push_str(&self.scratch);
        self.lines.push(line);
    }

    /// Number of appended records.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Chaos hook: tear the record at `index` (truncated tail, as a crash
    /// mid-append would leave). No-op when out of range.
    pub fn corrupt_record(&mut self, index: usize) {
        if let Some(line) = self.lines.get_mut(index) {
            let keep = line.len() / 2;
            line.truncate(keep);
        }
    }

    /// Decodes and returns the records for slots `from_slot..to_slot`
    /// (half-open), in slot order, verifying checksums and completeness.
    /// Only records overlapping the range are decoded, so a torn record
    /// *outside* the range does not block recovery.
    pub fn replay_range(
        &self,
        from_slot: usize,
        to_slot: usize,
    ) -> Result<Vec<JournalRecord>, JournalError> {
        let mut by_slot: Vec<Option<JournalRecord>> = vec![None; to_slot.saturating_sub(from_slot)];
        // Sealed lines are opaque until decoded, so decode everything; a
        // corrupt line only fails the replay if the range ends up
        // incomplete (it may have held a slot we need).
        let mut first_corrupt: Option<(usize, String)> = None;
        for (index, line) in self.lines.iter().enumerate() {
            match JournalRecord::decode(line) {
                Ok(rec) => {
                    if rec.t >= from_slot && rec.t < to_slot {
                        if let Some(cell) = by_slot.get_mut(rec.t - from_slot) {
                            *cell = Some(rec);
                        }
                    }
                }
                Err(detail) => {
                    if first_corrupt.is_none() {
                        first_corrupt = Some((index, detail));
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(by_slot.len());
        for (offset, cell) in by_slot.into_iter().enumerate() {
            match cell {
                Some(rec) => out.push(rec),
                None => {
                    // Corruption is the actionable cause when present —
                    // the missing slot was likely inside the torn record.
                    return Err(match first_corrupt {
                        Some((index, detail)) => JournalError::Corrupt { index, detail },
                        None => JournalError::Gap {
                            slot: from_slot + offset,
                        },
                    });
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OperatorMetrics;

    fn record(t: usize) -> JournalRecord {
        JournalRecord {
            t,
            raw: SlotMetrics {
                t,
                sim_time_secs: 600.0 * crate::convert::usize_to_f64(t + 1),
                throughput: 90.5,
                processed_tuples: 54_300.0,
                dropped_tuples: 0.0,
                cost_dollars: 0.05,
                pods: 2,
                source_rates: vec![100.0],
                reconfigured: false,
                pause_secs: 0.0,
                operators: vec![OperatorMetrics {
                    name: "op".to_string(),
                    tasks: 2,
                    input_rate: 100.0,
                    input_rates: vec![100.0],
                    output_rate: 90.5,
                    offered_load: 100.0,
                    cpu_util: 0.55,
                    capacity_sample: f64::NAN, // raw records may carry NaN
                    buffer_tuples: 3.25,
                    latency_estimate_secs: 0.02,
                    backpressure: false,
                    degraded: false,
                }],
            },
            deployment_before: vec![2],
            decided: vec![3],
            outcome: ReconfigOutcome::Applied,
        }
    }

    #[test]
    fn record_roundtrip_preserves_nan_payloads() {
        let rec = record(4);
        let back = JournalRecord::decode(&rec.encode()).expect("decode");
        assert_eq!(back.t, rec.t);
        assert_eq!(back.decided, rec.decided);
        assert_eq!(back.outcome, rec.outcome);
        // NaN != NaN, so compare bits explicitly.
        assert_eq!(
            back.raw.operators[0].capacity_sample.to_bits(),
            rec.raw.operators[0].capacity_sample.to_bits()
        );
    }

    #[test]
    fn append_line_is_byte_identical_to_encode() {
        // `append` stages the body in a reused scratch buffer and seals
        // by hand; the stored line must stay byte-identical to the
        // allocating `encode()` path (and to the tree-based codec both
        // were derived from — see `checkpoint::tests`).
        let mut journal = DecisionJournal::new();
        for t in 0..4 {
            journal.append(&record(t));
        }
        for t in 0..4 {
            assert_eq!(journal.lines[t], record(t).encode(), "slot {t}");
        }
        // And the wire form still carries the seal frame.
        let tree_body =
            crate::json::parse_json(crate::checkpoint::unseal(&journal.lines[2]).expect("sealed"));
        assert!(tree_body.is_ok());
    }

    #[test]
    fn replay_range_returns_slots_in_order() {
        let mut journal = DecisionJournal::new();
        for t in 0..10 {
            journal.append(&record(t));
        }
        let recs = journal.replay_range(3, 7).expect("replay");
        assert_eq!(
            recs.iter().map(|r| r.t).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
        assert!(journal.replay_range(5, 5).expect("empty range").is_empty());
    }

    #[test]
    fn corrupt_record_fails_replay_loudly() {
        let mut journal = DecisionJournal::new();
        for t in 0..6 {
            journal.append(&record(t));
        }
        journal.corrupt_record(4);
        match journal.replay_range(2, 6) {
            Err(JournalError::Corrupt { index: 4, .. }) => {}
            other => panic!("expected Corrupt at 4, got {other:?}"),
        }
    }

    #[test]
    fn missing_slot_is_a_gap() {
        let mut journal = DecisionJournal::new();
        journal.append(&record(0));
        journal.append(&record(2)); // slot 1 never journaled
        match journal.replay_range(0, 3) {
            Err(JournalError::Gap { slot: 1 }) => {}
            other => panic!("expected Gap at 1, got {other:?}"),
        }
    }
}
