//! Minimal self-contained JSON codec for crash-safe controller state.
//!
//! Checkpoints ([`crate::checkpoint`]) and decision journals
//! ([`crate::journal`]) must round-trip even in offline builds where the
//! real `serde`/`serde_json` crates are replaced by compile-only stubs
//! (the 13 known stub-only test failures tracked in ROADMAP.md). This
//! module is the shared, dependency-free codec they use instead: the
//! same minimal JSON machinery `dragster-lint` carries privately in
//! `crates/lint/src/report.rs`, extracted and extended with a writer and
//! bit-exact `f64` round-tripping. The lint crate keeps its own copy on
//! purpose — it must be able to lint the workspace even when the
//! dependency graph (including this crate) is broken.
//!
//! Floating-point state is serialized as the 16-hex-digit IEEE-754 bit
//! pattern ([`f64_to_hex`]/[`f64_from_hex`]), never as decimal text:
//! replay-identity after a crash requires *bit*-identical restored
//! state, and decimal formatting is lossy for that purpose.

// ---------------------------------------------------------------------------
// Value type.
// ---------------------------------------------------------------------------

/// Minimal JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Non-negative integral number ≤ 2^53 (exactly representable).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                crate::convert::f64_to_usize_saturating(*x).into()
            }
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// A float stored as its hex bit pattern (the bit-exact encoding this
    /// codec uses for all learner state).
    pub fn as_f64_bits(&self) -> Option<f64> {
        self.as_str().and_then(f64_from_hex)
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
                        // Integral values print without a fraction so
                        // counts/slots re-parse via `as_usize`.
                        out.push_str(&format!("{:.0}", x));
                    } else {
                        // `{:?}` is Rust's shortest round-trip formatting.
                        out.push_str(&format!("{:?}", x));
                    }
                } else {
                    // JSON has no NaN/Inf; bit-exact floats travel as hex
                    // strings, so a non-finite Num is a caller bug — encode
                    // as null rather than emitting invalid JSON.
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&esc(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&esc(k));
                    out.push_str("\":");
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

/// Escapes `s` directly into `out` — the allocation-free form of the
/// string escaper behind [`Json::render`]. Byte-identical to it.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                // `\u{:04x}` by hand: control chars are < 0x20, so the two
                // high digits are always zero.
                let v = u32::from(c);
                out.push_str("\\u00");
                out.push(char::from_digit((v >> 4) & 0xf, 16).unwrap_or('0'));
                out.push(char::from_digit(v & 0xf, 16).unwrap_or('0'));
            }
            c => out.push(c),
        }
    }
}

/// Writes a `usize` as plain decimal digits into `out` without
/// allocating — byte-identical to how [`num`] values render.
pub fn push_usize(v: usize, out: &mut String) {
    if v == 0 {
        out.push('0');
        return;
    }
    // Collect digits least-significant first, then emit in reverse; a
    // 64-bit usize has at most 20 decimal digits, so the buffer never
    // fills before `n` reaches zero.
    let mut digits = [0u32; 20];
    let mut used = 0;
    let mut n = v;
    for slot in digits.iter_mut() {
        if n == 0 {
            break;
        }
        *slot = u32::try_from(n % 10).unwrap_or(0);
        n /= 10;
        used += 1;
    }
    for &d in digits.iter().take(used).rev() {
        out.push(char::from_digit(d, 10).unwrap_or('0'));
    }
}

/// Writes a `u64` as 16 lowercase hex digits into `out` without
/// allocating — byte-identical to [`u64_to_hex`].
pub fn push_u64_hex(v: u64, out: &mut String) {
    for shift in (0..16).rev() {
        let d = u32::try_from((v >> (shift * 4)) & 0xf).unwrap_or(0);
        out.push(char::from_digit(d, 16).unwrap_or('0'));
    }
}

/// Writes an `f64`'s IEEE-754 bit pattern as 16 hex digits into `out`
/// without allocating — byte-identical to [`f64_to_hex`].
pub fn push_f64_hex(v: f64, out: &mut String) {
    push_u64_hex(v.to_bits(), out);
}

// ---------------------------------------------------------------------------
// Bit-exact scalar encodings.
// ---------------------------------------------------------------------------

/// Encodes an `f64` as its 16-hex-digit IEEE-754 bit pattern. Unlike any
/// decimal rendering, this round-trips every value (including NaN
/// payloads, signed zeros, and subnormals) bit-for-bit.
pub fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`f64_to_hex`]. Rejects anything but exactly 16 hex digits.
pub fn f64_from_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Encodes a `u64` (RNG words, checksums) as 16 hex digits.
pub fn u64_to_hex(v: u64) -> String {
    format!("{:016x}", v)
}

/// Inverse of [`u64_to_hex`]. Rejects anything but exactly 16 hex digits.
pub fn u64_from_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// FNV-1a 64-bit hash — the checksum for checkpoint blobs and journal
/// records (the same construction the lint baseline uses for finding
/// fingerprints). Not cryptographic; it detects torn/corrupt records,
/// not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

/// Parses a JSON document (objects, arrays, strings, numbers, literals).
/// Strict enough for round-tripping the documents this module writes;
/// trailing garbage is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing garbage at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], p: &mut usize) {
    while c.get(*p).is_some_and(|ch| ch.is_whitespace()) {
        *p += 1;
    }
}

fn parse_value(c: &[char], p: &mut usize) -> Result<Json, String> {
    skip_ws(c, p);
    let Some(&ch) = c.get(*p) else {
        return Err("unexpected end of input".to_string());
    };
    match ch {
        '{' => {
            *p += 1;
            let mut pairs = Vec::new();
            skip_ws(c, p);
            if c.get(*p) == Some(&'}') {
                *p += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(c, p);
                let Json::Str(key) = parse_value(c, p)? else {
                    return Err(format!("object key must be a string at offset {p}"));
                };
                skip_ws(c, p);
                if c.get(*p) != Some(&':') {
                    return Err(format!("expected ':' at offset {p}"));
                }
                *p += 1;
                let val = parse_value(c, p)?;
                pairs.push((key, val));
                skip_ws(c, p);
                match c.get(*p) {
                    Some(',') => *p += 1,
                    Some('}') => {
                        *p += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {p}")),
                }
            }
        }
        '[' => {
            *p += 1;
            let mut items = Vec::new();
            skip_ws(c, p);
            if c.get(*p) == Some(&']') {
                *p += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(c, p)?);
                skip_ws(c, p);
                match c.get(*p) {
                    Some(',') => *p += 1,
                    Some(']') => {
                        *p += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {p}")),
                }
            }
        }
        '"' => {
            *p += 1;
            let mut s = String::new();
            while let Some(&ch) = c.get(*p) {
                match ch {
                    '"' => {
                        *p += 1;
                        return Ok(Json::Str(s));
                    }
                    '\\' => {
                        *p += 1;
                        let Some(&e) = c.get(*p) else {
                            return Err("unterminated escape".to_string());
                        };
                        match e {
                            '"' => s.push('"'),
                            '\\' => s.push('\\'),
                            '/' => s.push('/'),
                            'n' => s.push('\n'),
                            'r' => s.push('\r'),
                            't' => s.push('\t'),
                            'b' => s.push('\u{8}'),
                            'f' => s.push('\u{c}'),
                            'u' => {
                                let hex: String = c
                                    .get(*p + 1..*p + 5)
                                    .ok_or("truncated \\u escape")?
                                    .iter()
                                    .collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *p += 4;
                            }
                            other => return Err(format!("bad escape '\\{other}'")),
                        }
                        *p += 1;
                    }
                    _ => {
                        s.push(ch);
                        *p += 1;
                    }
                }
            }
            Err("unterminated string".to_string())
        }
        't' | 'f' | 'n' => {
            for (lit, val) in [
                ("true", Json::Bool(true)),
                ("false", Json::Bool(false)),
                ("null", Json::Null),
            ] {
                let end = *p + lit.len();
                if let Some(span) = c.get(*p..end) {
                    if span.iter().collect::<String>() == lit {
                        *p = end;
                        return Ok(val);
                    }
                }
            }
            Err(format!("bad literal at offset {p}"))
        }
        _ => {
            let start = *p;
            while c
                .get(*p)
                .is_some_and(|ch| ch.is_ascii_digit() || matches!(ch, '-' | '+' | '.' | 'e' | 'E'))
            {
                *p += 1;
            }
            let text: String = c.get(start..*p).unwrap_or(&[]).iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

// ---------------------------------------------------------------------------
// Convenience builders for the checkpoint/journal encoders.
// ---------------------------------------------------------------------------

/// `Json::Num` from a usize (counts, slot indices). Values above 2^53
/// would lose precision; the simulator never produces them, and the
/// saturating conversion keeps the encoder total.
pub fn num(v: usize) -> Json {
    Json::Num(crate::convert::usize_to_f64(v))
}

/// A float as its bit-exact hex string.
pub fn bits(v: f64) -> Json {
    Json::Str(f64_to_hex(v))
}

/// An array of floats as bit-exact hex strings.
pub fn bits_arr(vs: &[f64]) -> Json {
    Json::Arr(vs.iter().map(|&v| bits(v)).collect())
}

/// Decodes an array of bit-exact hex floats.
pub fn bits_vec(j: &Json) -> Option<Vec<f64>> {
    j.as_arr()?.iter().map(Json::as_f64_bits).collect()
}

/// Decodes an array of usizes.
pub fn usize_vec(j: &Json) -> Option<Vec<usize>> {
    j.as_arr()?.iter().map(Json::as_usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let doc = Json::Obj(vec![
            ("version".to_string(), num(1)),
            ("name".to_string(), Json::Str("op \"a\"\n\\x".to_string())),
            (
                "xs".to_string(),
                Json::Arr(vec![Json::Null, Json::Bool(true), num(42)]),
            ),
            ("cap".to_string(), bits(1234.5678e-3)),
        ]);
        let text = doc.render();
        let back = parse_json(&text).expect("roundtrip parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn f64_hex_is_bit_exact() {
        for v in [
            0.0,
            -0.0,
            1.0,
            0.1,
            f64::MIN_POSITIVE,
            f64::MAX,
            -3.918_243_1e-17,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let hex = f64_to_hex(v);
            let back = f64_from_hex(&hex).expect("parse hex");
            assert_eq!(back.to_bits(), v.to_bits(), "bits differ for {v}");
        }
        // NaN payload survives too (plain equality can't see this).
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let back = f64_from_hex(&f64_to_hex(nan)).expect("parse NaN hex");
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn f64_hex_rejects_malformed() {
        assert_eq!(f64_from_hex(""), None);
        assert_eq!(f64_from_hex("123"), None);
        assert_eq!(f64_from_hex("zzzzzzzzzzzzzzzz"), None);
        assert_eq!(f64_from_hex("00000000000000000"), None);
    }

    #[test]
    fn integral_numbers_reparse_as_usize() {
        let text = num(7).render();
        assert_eq!(text, "7");
        let back = parse_json(&text).expect("parse");
        assert_eq!(back.as_usize(), Some(7));
    }

    #[test]
    fn parser_rejects_trailing_garbage_and_bad_docs() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,").is_err());
        assert!(parse_json("\"open").is_err());
        assert!(parse_json("tru").is_err());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
