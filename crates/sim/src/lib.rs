//! Stream-processing cluster simulator — the Flink-on-Kubernetes substitute.
//!
//! The paper evaluates Dragster by running Flink 1.10 jobs on a Kubernetes
//! 1.16 cluster where every TaskManager pod provides one slot (1 CPU, 2 GB)
//! and the controller adjusts the number of tasks per operator (1–10) every
//! 10 minutes through Flink's checkpoint stop-and-resume (~30 s pause). No
//! Flink bindings exist for Rust, so this crate reproduces the exact
//! observation/actuation surface the controller interacts with:
//!
//! * **observe** — per-operator input/output throughput, CPU utilization,
//!   buffer backlog (Flink REST API + K8s Metrics Server in the paper) via
//!   [`metrics::SlotMetrics`];
//! * **actuate** — a new [`cluster::Deployment`] (tasks per operator), paying
//!   the checkpoint pause, via [`fluid::FluidSim::reconfigure`];
//! * **pay** — pod-hours are metered into dollars ([`cluster::CostMeter`]),
//!   supporting the paper's cost-per-billion-tuples and budget experiments.
//!
//! Two engines share the same application model:
//!
//! * [`fluid`] — a deterministic-seeded, tick-based *fluid* (rate) simulator
//!   with per-operator buffers, backpressure, cloud noise, and checkpoint
//!   pauses. All paper experiments run on this engine.
//! * [`des`] — a discrete-event, batch-of-tuples engine used to
//!   cross-validate the fluid model's steady state (`tests/` asserts the two
//!   agree within tolerance).
//!
//! Supporting modules: [`capacity`] (configuration → true service capacity
//! ground truth the GP must learn), [`noise`] (Gaussian observation noise
//! and overcommit degradation — Section 1's "dynamic cloud noises"),
//! [`cluster`] (pods, budget, cost), [`harness`] (the
//! [`harness::Autoscaler`] trait and experiment runner shared by Dragster
//! and all baselines), [`faults`] (the chaos layer: scripted and stochastic
//! fault plans shared by both engines), [`sanitize`] (the metric
//! sanitization applied before any autoscaler sees a snapshot).

pub mod capacity;
pub mod checkpoint;
pub mod cluster;
pub mod convert;
pub mod des;
pub mod error;
pub mod faults;
pub mod fluid;
pub mod harness;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod noise;
pub mod sanitize;

pub use capacity::{Application, CapacityModel};
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointStore, RetrySnapshot};
pub use cluster::{ClusterConfig, CostMeter, Deployment};
pub use convert::{f64_to_usize_saturating, usize_to_f64};
pub use des::DesSim;
pub use error::SimError;
pub use faults::{
    ControllerFault, ControllerFaultDriver, FaultEvent, FaultKind, FaultPlan, FaultRates,
    FaultState, ScriptedFault,
};
pub use fluid::FluidSim;
pub use harness::{
    run_experiment, run_experiment_recoverable, run_experiment_with, ArrivalProcess, Autoscaler,
    ConstantArrival, DegradeReason, ExperimentOptions, RecoveryAction, RecoveryEvent,
    RecoveryOptions, RetryPolicy, Trace,
};
pub use journal::{DecisionJournal, JournalError, JournalRecord, ReconfigOutcome};
pub use json::Json;
pub use metrics::{OperatorMetrics, SlotMetrics};
pub use noise::{FailureModel, NoiseConfig, OvercommitModel, Rng};
pub use sanitize::{MetricSanitizer, SanitizeConfig, SanitizerSnapshot};
