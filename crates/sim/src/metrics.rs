//! What the Job Monitor observes each decision slot.
//!
//! In the paper, the Job Monitor polls the Flink JobManager REST API
//! (operator status, input/output throughput) and the Kubernetes Metrics
//! Server (CPU utilization). [`SlotMetrics`] is the simulated equivalent —
//! one snapshot per 10-minute decision slot — and is the *only* information
//! any autoscaler (Dragster or baseline) receives.

use serde::{Deserialize, Serialize};

/// Per-operator observations for one slot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OperatorMetrics {
    /// Operator name (for reports).
    pub name: String,
    /// Current task count.
    pub tasks: usize,
    /// Average tuples/second received over the slot (`Σ ē_i`).
    pub input_rate: f64,
    /// Per-predecessor-edge received rates (the `ē_i` vector, in the
    /// operator's predecessor order) — what the Flink REST API exposes per
    /// input gate. Drives the Theorem-2 online estimation of `h_{i,j}`.
    pub input_rates: Vec<f64>,
    /// Average tuples/second emitted over the slot (`Σ_j e_j^i`).
    pub output_rate: f64,
    /// Average desired output rate (`Σ_j h_{i,j}(ē_i)`) — what the operator
    /// *would* emit with unlimited capacity. `offered_load − capacity` is
    /// the soft-constraint `l_i` of Eq. 11.
    pub offered_load: f64,
    /// Observed (noisy) CPU utilization in `(0, 1]` — Metrics Server view.
    pub cpu_util: f64,
    /// The Eq.-8 capacity sample `c_i = Σ_j e_j^i / cpu_i` — a noisy
    /// estimate of the true service capacity `y_i`.
    pub capacity_sample: f64,
    /// Tuples buffered (backlog) at slot end.
    pub buffer_tuples: f64,
    /// Little's-law end-of-slot queueing-latency estimate in seconds:
    /// `buffer / output_rate`. The paper ties the bounded buffer (dynamic
    /// fit, Eq. 12) to low latency — this is the observable version.
    pub latency_estimate_secs: f64,
    /// Backpressure symptom: the operator ran saturated or its buffer grew
    /// during the slot (what Dhalion keys on).
    pub backpressure: bool,
    /// The reading is known-degraded: the metrics scrape dropped out or
    /// served a stale snapshot (the monitor *knows* this — a failed scrape
    /// is observable), or the sanitizer imputed/clamped a corrupt value.
    /// Degraded observations must not enter GP posteriors or selectivity
    /// estimates.
    #[serde(default)]
    pub degraded: bool,
}

/// One decision-slot snapshot of the whole application.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SlotMetrics {
    /// Slot index (0-based).
    pub t: usize,
    /// Simulated seconds since experiment start, at slot end.
    pub sim_time_secs: f64,
    /// Average sink ingest rate over the slot (tuples/second) — the
    /// application throughput `f_t`.
    pub throughput: f64,
    /// Tuples delivered to the sink during this slot.
    pub processed_tuples: f64,
    /// Tuples dropped due to buffer overflow during this slot.
    pub dropped_tuples: f64,
    /// Dollars spent this slot.
    pub cost_dollars: f64,
    /// Pods allocated during this slot.
    pub pods: usize,
    /// Offered source rates during this slot (per source).
    pub source_rates: Vec<f64>,
    /// Whether the slot began with a checkpoint reconfiguration pause.
    pub reconfigured: bool,
    /// Seconds of processing lost to the pause.
    pub pause_secs: f64,
    /// Per-operator observations.
    pub operators: Vec<OperatorMetrics>,
}

impl SlotMetrics {
    /// Capacity samples in capacity-index order (the GP observations).
    pub fn capacity_samples(&self) -> Vec<f64> {
        self.operators.iter().map(|o| o.capacity_sample).collect()
    }

    /// Offered loads in capacity-index order.
    pub fn offered_loads(&self) -> Vec<f64> {
        self.operators.iter().map(|o| o.offered_load).collect()
    }

    /// Indices of operators showing backpressure.
    pub fn backpressured(&self) -> Vec<usize> {
        self.operators
            .iter()
            .enumerate()
            .filter(|(_, o)| o.backpressure)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total buffered tuples across operators.
    pub fn total_buffered(&self) -> f64 {
        self.operators.iter().map(|o| o.buffer_tuples).sum()
    }

    /// End-to-end queueing-latency estimate: the sum of per-operator
    /// Little's-law estimates along the (worst-case) pipeline.
    pub fn latency_estimate_secs(&self) -> f64 {
        self.operators.iter().map(|o| o.latency_estimate_secs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &str, bp: bool, cap: f64) -> OperatorMetrics {
        OperatorMetrics {
            name: name.into(),
            tasks: 1,
            input_rate: 10.0,
            input_rates: vec![10.0],
            output_rate: 9.0,
            offered_load: 10.0,
            cpu_util: 0.9,
            capacity_sample: cap,
            buffer_tuples: 5.0,
            latency_estimate_secs: 5.0 / 9.0,
            backpressure: bp,
            degraded: false,
        }
    }

    fn slot() -> SlotMetrics {
        SlotMetrics {
            t: 3,
            sim_time_secs: 1800.0,
            throughput: 9.0,
            processed_tuples: 5400.0,
            dropped_tuples: 0.0,
            cost_dollars: 0.02,
            pods: 2,
            source_rates: vec![10.0],
            reconfigured: false,
            pause_secs: 0.0,
            operators: vec![op("a", true, 10.0), op("b", false, 20.0)],
        }
    }

    #[test]
    fn accessors() {
        let s = slot();
        assert_eq!(s.capacity_samples(), vec![10.0, 20.0]);
        assert_eq!(s.offered_loads(), vec![10.0, 10.0]);
        assert_eq!(s.backpressured(), vec![0]);
        assert_eq!(s.total_buffered(), 10.0);
    }

    #[test]
    fn serde_roundtrip() {
        let s = slot();
        let j = serde_json::to_string(&s).unwrap();
        let back: SlotMetrics = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
