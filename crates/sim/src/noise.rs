//! Cloud noise: the "dynamic cloud noises" of Section 1.
//!
//! Public clouds overcommit and imperfectly isolate tenants, so the same
//! configuration yields varying effective capacity, and metric observations
//! (CPU utilization) are themselves noisy. The paper's GP observation model
//! is `c_i(t) = y_i(t) + ε`, `ε ~ N(0, σ²)` (Section 4.2.2); this module
//! generates exactly that, plus two heavier mechanisms used in robustness
//! ablations: multiplicative capacity jitter and utilization-dependent
//! overcommit degradation (Google Cloud's ≥ 90 % server-utilization policy,
//! the paper's reference \[6\]).

use serde::{Deserialize, Serialize};

/// A small, fast, seedable RNG (xoshiro256**-style) with a Gaussian sampler.
///
/// We deliberately avoid `rand_distr`: the simulator needs only uniform and
/// normal variates, and a self-contained generator keeps experiment runs
/// bit-reproducible across dependency upgrades.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second Box–Muller variate.
    spare: Option<f64>,
}

impl Rng {
    /// Seed with splitmix64 expansion (any seed is fine, including 0).
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
            spare: None,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        crate::convert::f64_to_usize_saturating(self.uniform() * n as f64) % n.max(1)
    }

    /// Standard normal via Box–Muller (with spare caching).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // u1 in (0,1] to keep ln finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.gaussian()
    }

    /// Snapshot of the generator position: the four xoshiro state words
    /// plus the cached Box–Muller spare. Used by controller checkpoints
    /// ([`crate::checkpoint`]) so a restored run resumes the *same*
    /// stream rather than reseeding — reseeding would silently break the
    /// replay-identity guarantee.
    pub fn save_state(&self) -> ([u64; 4], Option<f64>) {
        (self.s, self.spare)
    }

    /// Rebuilds a generator at a saved position (inverse of
    /// [`Rng::save_state`]). This is *not* a seeding constructor: the
    /// words must come from a generator that was itself seeded from the
    /// master experiment seed, preserving the L6/L10 provenance
    /// discipline.
    pub fn restore_state(state: [u64; 4], spare: Option<f64>) -> Rng {
        Rng { s: state, spare }
    }
}

/// Utilization-dependent capacity degradation modeling overcommitted
/// servers: when the cluster-wide pod utilization exceeds `threshold`,
/// effective capacities shrink linearly down to `floor` at 100 %.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OvercommitModel {
    /// Cluster utilization above which degradation starts (e.g. 0.9).
    pub threshold: f64,
    /// Capacity multiplier at 100 % cluster utilization (e.g. 0.7).
    pub floor: f64,
}

impl OvercommitModel {
    /// Capacity multiplier for a given cluster-wide utilization in `[0,1]`.
    pub fn multiplier(&self, cluster_util: f64) -> f64 {
        if cluster_util <= self.threshold {
            1.0
        } else {
            let frac = ((cluster_util - self.threshold) / (1.0 - self.threshold)).clamp(0.0, 1.0);
            1.0 - frac * (1.0 - self.floor)
        }
    }
}

/// Transient pod failures: each slot, each operator independently loses a
/// fraction of its capacity with some probability — a pod crash/evict that
/// Kubernetes replaces within the slot. The controller is *not* told;
/// failures surface only through degraded metrics, exactly like the
/// "unexpected changes" of Section 1.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Probability an operator suffers a failure in a given slot.
    pub prob_per_slot: f64,
    /// Fraction of the operator's capacity lost while failed (e.g. 0.5 =
    /// half its pods are restarting).
    pub capacity_loss: f64,
}

impl FailureModel {
    /// Sample this slot's capacity multiplier for one operator.
    pub fn sample_multiplier(&self, rng: &mut Rng) -> f64 {
        if rng.uniform() < self.prob_per_slot {
            (1.0 - self.capacity_loss).max(0.0)
        } else {
            1.0
        }
    }
}

/// All noise knobs of the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Std-dev of the *multiplicative* per-slot capacity jitter
    /// (0 disables). Effective capacity = true × max(0.05, 1 + N(0, σ)).
    pub capacity_jitter_std: f64,
    /// Std-dev of the *relative* CPU-utilization observation noise — this
    /// is what makes the Eq. 8 capacity sample `c_i` a noisy estimate of
    /// `y_i`.
    pub cpu_observation_std: f64,
    /// Optional overcommit degradation.
    pub overcommit: Option<OvercommitModel>,
    /// Optional transient pod failures.
    pub failures: Option<FailureModel>,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            capacity_jitter_std: 0.03,
            cpu_observation_std: 0.05,
            overcommit: None,
            failures: None,
        }
    }
}

impl NoiseConfig {
    /// A noise-free configuration (useful for oracle computations & tests).
    pub fn none() -> NoiseConfig {
        NoiseConfig {
            capacity_jitter_std: 0.0,
            cpu_observation_std: 0.0,
            overcommit: None,
            failures: None,
        }
    }

    /// Sample the capacity multiplier for one slot.
    pub fn capacity_multiplier(&self, rng: &mut Rng, cluster_util: f64) -> f64 {
        let jitter = if self.capacity_jitter_std > 0.0 {
            (1.0 + rng.normal(0.0, self.capacity_jitter_std)).max(0.05)
        } else {
            1.0
        };
        let oc = self.overcommit.map_or(1.0, |m| m.multiplier(cluster_util));
        jitter * oc
    }

    /// Perturb a true CPU utilization into an observed one, clamped to
    /// `(0.01, 1.0]` (a Metrics-Server reading from a *live* pod is always
    /// positive and a single pod cannot report > 100 %). A true utilization
    /// of exactly 0 means the operator is down — no pod is burning CPU —
    /// and the reading is a genuine 0, not clamped up to 0.01: hiding a
    /// fully-failed operator behind the clamp would blind the controller
    /// to the failure.
    pub fn observe_cpu(&self, rng: &mut Rng, true_util: f64) -> f64 {
        if true_util <= 0.0 {
            return 0.0;
        }
        if self.cpu_observation_std == 0.0 {
            return true_util.clamp(0.01, 1.0);
        }
        (true_util * (1.0 + rng.normal(0.0, self.cpu_observation_std))).clamp(0.01, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let u = r.uniform_in(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&u));
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(1234);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_scales() {
        let mut r = Rng::new(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
    }

    #[test]
    fn overcommit_multiplier_shape() {
        let m = OvercommitModel {
            threshold: 0.9,
            floor: 0.7,
        };
        assert_eq!(m.multiplier(0.5), 1.0);
        assert_eq!(m.multiplier(0.9), 1.0);
        assert!((m.multiplier(1.0) - 0.7).abs() < 1e-12);
        let mid = m.multiplier(0.95);
        assert!(mid < 1.0 && mid > 0.7);
    }

    #[test]
    fn noise_free_config_is_identity() {
        let cfg = NoiseConfig::none();
        let mut r = Rng::new(0);
        assert_eq!(cfg.capacity_multiplier(&mut r, 0.99), 1.0);
        assert_eq!(cfg.observe_cpu(&mut r, 0.5), 0.5);
    }

    #[test]
    fn down_operator_reads_genuine_zero() {
        // Regression: the (0.01, 1.0] clamp used to hide a fully-failed
        // operator (true util 0) from the controller.
        let noisy = NoiseConfig {
            cpu_observation_std: 0.2,
            ..Default::default()
        };
        let mut r = Rng::new(17);
        assert_eq!(noisy.observe_cpu(&mut r, 0.0), 0.0);
        assert_eq!(NoiseConfig::none().observe_cpu(&mut r, 0.0), 0.0);
        // live operators still never read 0
        for _ in 0..1000 {
            assert!(noisy.observe_cpu(&mut r, 0.005) >= 0.01);
        }
    }

    #[test]
    fn cpu_observation_clamped() {
        let cfg = NoiseConfig {
            cpu_observation_std: 10.0,
            ..Default::default()
        };
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let u = cfg.observe_cpu(&mut r, 0.5);
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn capacity_multiplier_positive() {
        let cfg = NoiseConfig {
            capacity_jitter_std: 1.0,
            ..Default::default()
        };
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            assert!(cfg.capacity_multiplier(&mut r, 0.0) > 0.0);
        }
    }
}
