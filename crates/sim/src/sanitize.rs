//! Metric sanitization — the harness-side defense between the (possibly
//! faulted) Job Monitor and every autoscaler.
//!
//! The chaos layer ([`faults`](crate::faults)) can hand the controller NaN
//! readings (scrape dropouts), stale snapshots, and silently corrupted
//! capacity samples. Feeding those into a GP posterior or the saddle-point
//! iterates poisons every subsequent decision, so the harness passes each
//! [`SlotMetrics`] through a [`MetricSanitizer`] before any
//! [`Autoscaler`](crate::harness::Autoscaler) sees it:
//!
//! * **impute** — non-finite or negative readings are replaced with the
//!   operator's last valid reading (zero before any valid reading exists)
//!   and the operator is flagged [`degraded`](OperatorMetrics::degraded);
//! * **clamp** — a finite capacity sample wildly above the operator's
//!   running per-task maximum (silent corruption) is clamped to that
//!   maximum and flagged;
//! * **discard** — stale snapshots arrive already flagged by the monitor
//!   and simply stay flagged, which keeps them out of GP updates
//!   downstream (the controller skips degraded operators).
//!
//! On a clean run the sanitizer is the identity, so traces with an inert
//! fault plan stay bit-identical to unfaulted runs.

use crate::metrics::{OperatorMetrics, SlotMetrics};
use serde::{Deserialize, Serialize};

/// Sanitizer knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SanitizeConfig {
    /// A capacity sample whose per-task value exceeds `spike_factor` × the
    /// running per-task maximum of accepted samples is treated as corrupt
    /// and clamped.
    pub spike_factor: f64,
    /// Number of accepted samples per operator before spike clamping
    /// activates (the running maximum needs history to be meaningful).
    pub min_history: usize,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig {
            spike_factor: 10.0,
            min_history: 3,
        }
    }
}

/// Stateful per-run sanitizer (one per experiment; keyed by operator
/// index).
#[derive(Clone, Debug)]
pub struct MetricSanitizer {
    cfg: SanitizeConfig,
    /// Last clean (non-degraded) reading per operator.
    last_valid: Vec<Option<OperatorMetrics>>,
    /// Running max of accepted per-task capacity samples.
    per_task_max: Vec<f64>,
    /// Accepted-sample count per operator.
    accepted: Vec<usize>,
}

/// `v` if it is a usable reading (finite, non-negative), else `fallback`.
fn repair(v: f64, fallback: f64) -> f64 {
    if v.is_finite() && v >= 0.0 {
        v
    } else {
        fallback
    }
}

/// Copy `src` into `dst`, reusing `dst`'s `name` and `input_rates`
/// allocations. The derived `Clone` would reallocate both on every
/// accepted slot (the sanitizer sits on the per-slot hot path), while a
/// field-wise copy is free once capacities match.
fn copy_operator_metrics(dst: &mut OperatorMetrics, src: &OperatorMetrics) {
    dst.name.clone_from(&src.name);
    dst.tasks = src.tasks;
    dst.input_rate = src.input_rate;
    dst.input_rates.clone_from(&src.input_rates);
    dst.output_rate = src.output_rate;
    dst.offered_load = src.offered_load;
    dst.cpu_util = src.cpu_util;
    dst.capacity_sample = src.capacity_sample;
    dst.buffer_tuples = src.buffer_tuples;
    dst.latency_estimate_secs = src.latency_estimate_secs;
    dst.backpressure = src.backpressure;
    dst.degraded = src.degraded;
}

impl MetricSanitizer {
    pub fn new(cfg: SanitizeConfig) -> MetricSanitizer {
        MetricSanitizer {
            cfg,
            last_valid: Vec::new(),
            per_task_max: Vec::new(),
            accepted: Vec::new(),
        }
    }

    fn ensure_capacity(&mut self, n: usize) {
        if self.last_valid.len() < n {
            self.last_valid.resize(n, None);
            self.per_task_max.resize(n, 0.0);
            self.accepted.resize(n, 0);
        }
    }

    /// Sanitize one slot snapshot. Clean inputs pass through unchanged
    /// (bit-identical); faulted fields are imputed/clamped and flagged.
    /// The returned snapshot never contains a NaN or negative metric.
    pub fn sanitize(&mut self, mut m: SlotMetrics) -> SlotMetrics {
        self.ensure_capacity(m.operators.len());
        for (i, om) in m.operators.iter_mut().enumerate() {
            let unusable = !om.cpu_util.is_finite()
                || om.cpu_util < 0.0
                || !om.capacity_sample.is_finite()
                || om.capacity_sample < 0.0
                || !om.input_rate.is_finite()
                || om.input_rate < 0.0
                || !om.output_rate.is_finite()
                || om.output_rate < 0.0
                || !om.offered_load.is_finite()
                || om.offered_load < 0.0
                || !om.buffer_tuples.is_finite()
                || om.buffer_tuples < 0.0
                || !om.latency_estimate_secs.is_finite()
                || om.latency_estimate_secs < 0.0
                || om.input_rates.iter().any(|r| !r.is_finite() || *r < 0.0);
            if unusable {
                let prev = self.last_valid.get(i).and_then(|o| o.as_ref());
                let Some(prev) = prev else {
                    // All-dropout window: no valid sample has *ever* been
                    // accepted for this operator, so there is nothing to
                    // impute from. Mixing the reading's surviving raw
                    // fields with zero-imputed ones would fabricate a
                    // half-real observation; return the canonical
                    // explicitly-degraded reading instead (identity
                    // fields kept, every measurement zeroed, flagged), so
                    // downstream clean-gates skip it wholesale.
                    om.input_rate = 0.0;
                    for r in om.input_rates.iter_mut() {
                        *r = 0.0;
                    }
                    om.output_rate = 0.0;
                    om.offered_load = 0.0;
                    om.cpu_util = 0.0;
                    om.capacity_sample = 0.0;
                    om.buffer_tuples = 0.0;
                    om.latency_estimate_secs = 0.0;
                    om.backpressure = false;
                    om.degraded = true;
                    continue;
                };
                // Impute every bad field from the last valid reading.
                om.cpu_util = repair(om.cpu_util, prev.cpu_util);
                om.capacity_sample = repair(om.capacity_sample, prev.capacity_sample);
                om.input_rate = repair(om.input_rate, prev.input_rate);
                om.output_rate = repair(om.output_rate, prev.output_rate);
                om.offered_load = repair(om.offered_load, prev.offered_load);
                om.buffer_tuples = repair(om.buffer_tuples, prev.buffer_tuples);
                om.latency_estimate_secs =
                    repair(om.latency_estimate_secs, prev.latency_estimate_secs);
                for (k, r) in om.input_rates.iter_mut().enumerate() {
                    let prev_r = prev.input_rates.get(k).copied().unwrap_or(0.0);
                    *r = repair(*r, prev_r);
                }
                om.degraded = true;
            }
            // Spike clamp: silent corruption produces finite but absurd
            // capacity samples. Per-task normalization keeps legitimate
            // scale-ups (1 task → 10 tasks) from tripping the detector.
            let tasks = crate::convert::usize_to_f64(om.tasks.max(1));
            let per_task = om.capacity_sample / tasks;
            let accepted_i = self.accepted.get(i).copied().unwrap_or(0);
            let per_task_max_i = self.per_task_max.get(i).copied().unwrap_or(0.0);
            if accepted_i >= self.cfg.min_history
                && per_task_max_i > 0.0
                && per_task > self.cfg.spike_factor * per_task_max_i
            {
                om.capacity_sample = per_task_max_i * tasks;
                om.degraded = true;
            }
            // Clean readings extend the history; degraded ones never do.
            if !om.degraded {
                if let Some(ptm) = self.per_task_max.get_mut(i) {
                    if per_task > *ptm {
                        *ptm = per_task;
                    }
                }
                if let Some(a) = self.accepted.get_mut(i) {
                    *a += 1;
                }
                if let Some(lv) = self.last_valid.get_mut(i) {
                    match lv {
                        // Steady state: overwrite in place, zero allocs.
                        Some(prev) => copy_operator_metrics(prev, om),
                        // First accepted sample: one allocation per
                        // operator per run (allowlisted).
                        None => *lv = Some(om.clone()),
                    }
                }
            }
        }
        m
    }

    /// Snapshot of the full sanitizer state for controller checkpoints
    /// ([`crate::checkpoint`]). Restoring via
    /// [`MetricSanitizer::from_snapshot`] yields a sanitizer whose future
    /// outputs are bit-identical to the original's — required for
    /// crash-replay identity, since the sanitizer sits between the raw
    /// journal records and the autoscaler.
    pub fn snapshot(&self) -> SanitizerSnapshot {
        SanitizerSnapshot {
            cfg: self.cfg,
            last_valid: self.last_valid.clone(),
            per_task_max: self.per_task_max.clone(),
            accepted: self.accepted.clone(),
        }
    }

    /// Rebuild a sanitizer from a checkpointed snapshot.
    pub fn from_snapshot(s: SanitizerSnapshot) -> MetricSanitizer {
        MetricSanitizer {
            cfg: s.cfg,
            last_valid: s.last_valid,
            per_task_max: s.per_task_max,
            accepted: s.accepted,
        }
    }
}

/// Exported sanitizer state (see [`MetricSanitizer::snapshot`]). Fields
/// are public so the checkpoint codec can encode them without `serde`.
#[derive(Clone, Debug, PartialEq)]
pub struct SanitizerSnapshot {
    pub cfg: SanitizeConfig,
    /// Last clean (non-degraded) reading per operator.
    pub last_valid: Vec<Option<OperatorMetrics>>,
    /// Running max of accepted per-task capacity samples.
    pub per_task_max: Vec<f64>,
    /// Accepted-sample count per operator.
    pub accepted: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(cap: f64, util: f64) -> OperatorMetrics {
        OperatorMetrics {
            name: "op".into(),
            tasks: 2,
            input_rate: 100.0,
            input_rates: vec![100.0],
            output_rate: 90.0,
            offered_load: 100.0,
            cpu_util: util,
            capacity_sample: cap,
            buffer_tuples: 0.0,
            latency_estimate_secs: 0.0,
            backpressure: false,
            degraded: false,
        }
    }

    fn slot(ops: Vec<OperatorMetrics>) -> SlotMetrics {
        SlotMetrics {
            t: 0,
            sim_time_secs: 600.0,
            throughput: 90.0,
            processed_tuples: 54_000.0,
            dropped_tuples: 0.0,
            cost_dollars: 0.05,
            pods: 2,
            source_rates: vec![100.0],
            reconfigured: false,
            pause_secs: 0.0,
            operators: ops,
        }
    }

    #[test]
    fn clean_input_is_identity() {
        let mut s = MetricSanitizer::new(SanitizeConfig::default());
        let m = slot(vec![op(200.0, 0.5)]);
        let out = s.sanitize(m.clone());
        assert_eq!(out, m);
    }

    #[test]
    fn nan_dropout_imputed_from_last_valid() {
        let mut s = MetricSanitizer::new(SanitizeConfig::default());
        let _ = s.sanitize(slot(vec![op(200.0, 0.5)]));
        let out = s.sanitize(slot(vec![op(f64::NAN, f64::NAN)]));
        let o = &out.operators[0];
        assert_eq!(o.capacity_sample, 200.0);
        assert_eq!(o.cpu_util, 0.5);
        assert!(o.degraded);
    }

    #[test]
    fn nan_before_any_history_becomes_zero() {
        let mut s = MetricSanitizer::new(SanitizeConfig::default());
        let out = s.sanitize(slot(vec![op(f64::NAN, 0.5)]));
        let o = &out.operators[0];
        assert_eq!(o.capacity_sample, 0.0);
        assert!(o.degraded);
    }

    #[test]
    fn negative_reading_is_repaired() {
        let mut s = MetricSanitizer::new(SanitizeConfig::default());
        let _ = s.sanitize(slot(vec![op(150.0, 0.6)]));
        let mut bad = op(-3.0, 0.6);
        bad.output_rate = -1.0;
        let out = s.sanitize(slot(vec![bad]));
        let o = &out.operators[0];
        assert_eq!(o.capacity_sample, 150.0);
        assert_eq!(o.output_rate, 90.0);
        assert!(o.degraded);
    }

    #[test]
    fn corrupt_spike_clamped_after_history() {
        let mut s = MetricSanitizer::new(SanitizeConfig::default());
        for _ in 0..3 {
            let _ = s.sanitize(slot(vec![op(200.0, 0.5)]));
        }
        // 50× the per-task max: silent corruption, must be clamped
        let out = s.sanitize(slot(vec![op(200.0 * 50.0, 0.5)]));
        let o = &out.operators[0];
        assert_eq!(o.capacity_sample, 200.0);
        assert!(o.degraded);
    }

    #[test]
    fn legitimate_scale_up_not_clamped() {
        let mut s = MetricSanitizer::new(SanitizeConfig::default());
        for _ in 0..4 {
            let _ = s.sanitize(slot(vec![op(200.0, 0.5)])); // 2 tasks
        }
        // 10 tasks at the same per-task capacity: 5× total, per-task 1×
        let mut big = op(1000.0, 0.5);
        big.tasks = 10;
        let out = s.sanitize(slot(vec![big]));
        assert!(!out.operators[0].degraded);
        assert_eq!(out.operators[0].capacity_sample, 1000.0);
    }

    #[test]
    fn spike_before_history_passes_and_seeds_nothing_bad() {
        // Under min_history the detector stays off (cold start is noisy);
        // the wild value is accepted into history but later real samples
        // keep the run usable.
        let cfg = SanitizeConfig {
            min_history: 2,
            ..Default::default()
        };
        let mut s = MetricSanitizer::new(cfg);
        let first = s.sanitize(slot(vec![op(300.0, 0.5)]));
        assert!(!first.operators[0].degraded);
    }

    #[test]
    fn degraded_readings_never_extend_history() {
        let mut s = MetricSanitizer::new(SanitizeConfig::default());
        for _ in 0..3 {
            let _ = s.sanitize(slot(vec![op(100.0, 0.5)]));
        }
        // corrupt sample is clamped and must not raise the running max
        let _ = s.sanitize(slot(vec![op(100.0 * 100.0, 0.5)]));
        let out = s.sanitize(slot(vec![op(100.0 * 100.0, 0.5)]));
        assert_eq!(out.operators[0].capacity_sample, 100.0);
    }

    #[test]
    fn stale_flag_is_preserved() {
        let mut s = MetricSanitizer::new(SanitizeConfig::default());
        let mut stale = op(200.0, 0.5);
        stale.degraded = true; // the monitor flagged a stale snapshot
        let out = s.sanitize(slot(vec![stale]));
        assert!(out.operators[0].degraded);
        // and it did not enter the history
        let out2 = s.sanitize(slot(vec![op(f64::NAN, 0.5)]));
        assert_eq!(out2.operators[0].capacity_sample, 0.0);
    }

    #[test]
    fn first_slot_dropout_is_an_explicit_degraded_reading() {
        // Regression: before the fix, an unusable first-slot reading kept
        // its surviving raw fields (cpu_util 0.5 here) while zero-imputing
        // the broken ones — a fabricated half-real observation. With no
        // last-valid sample ever seen, the sanitizer must return the
        // canonical fully-zeroed degraded reading instead.
        let mut s = MetricSanitizer::new(SanitizeConfig::default());
        let mut bad = op(f64::NAN, 0.5);
        bad.backpressure = true;
        let out = s.sanitize(slot(vec![bad]));
        let o = &out.operators[0];
        assert!(o.degraded);
        assert_eq!(o.capacity_sample, 0.0);
        assert_eq!(o.cpu_util, 0.0, "raw fields must not leak through");
        assert_eq!(o.input_rate, 0.0);
        assert_eq!(o.input_rates, vec![0.0]);
        assert_eq!(o.output_rate, 0.0);
        assert_eq!(o.offered_load, 0.0);
        assert_eq!(o.buffer_tuples, 0.0);
        assert_eq!(o.latency_estimate_secs, 0.0);
        assert!(!o.backpressure);
        // identity fields survive
        assert_eq!(o.name, "op");
        assert_eq!(o.tasks, 2);
    }

    #[test]
    fn nan_only_window_stays_explicitly_degraded() {
        // A window where *every* slot drops out never seeds history: each
        // reading must come back fully zeroed and flagged, and the first
        // clean reading afterwards must pass through untouched.
        let mut s = MetricSanitizer::new(SanitizeConfig::default());
        for _ in 0..5 {
            let out = s.sanitize(slot(vec![op(f64::NAN, f64::NAN)]));
            let o = &out.operators[0];
            assert!(o.degraded);
            assert_eq!(o.capacity_sample, 0.0);
            assert_eq!(o.cpu_util, 0.0);
            assert_eq!(o.output_rate, 0.0);
        }
        let clean = slot(vec![op(220.0, 0.4)]);
        let out = s.sanitize(clean.clone());
        assert_eq!(out, clean);
    }

    #[test]
    fn snapshot_roundtrip_preserves_behaviour() {
        let mut s = MetricSanitizer::new(SanitizeConfig::default());
        for _ in 0..3 {
            let _ = s.sanitize(slot(vec![op(200.0, 0.5)]));
        }
        let mut restored = MetricSanitizer::from_snapshot(s.snapshot());
        // Both must clamp the same spike identically and impute the same
        // dropout identically.
        let spike = slot(vec![op(200.0 * 50.0, 0.5)]);
        assert_eq!(s.sanitize(spike.clone()), restored.sanitize(spike));
        let dropout = slot(vec![op(f64::NAN, f64::NAN)]);
        assert_eq!(s.sanitize(dropout.clone()), restored.sanitize(dropout));
    }
}
