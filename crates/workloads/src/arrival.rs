//! Time-varying arrival processes.
//!
//! Section 6.4 scales WordCount's input "up/down … without notifying
//! systems every 200 minutes" (a square wave over 10-minute slots);
//! Section 6.5 scales the Yahoo input up once at 300 minutes (a step).
//! These plus sine, spike and recorded-trace processes cover the
//! gradual-drift and unexpected-shock scenarios of Section 1.

use dragster_sim::ArrivalProcess;

/// Multiply a base rate vector by a scalar time profile.
#[derive(Clone, Debug)]
pub struct ScaledArrival<P> {
    pub base: Vec<f64>,
    pub profile: P,
}

impl<P: FnMut(usize) -> f64> ArrivalProcess for ScaledArrival<P> {
    fn rates(&mut self, t: usize) -> Vec<f64> {
        let s = (self.profile)(t);
        self.base.iter().map(|r| r * s).collect()
    }
}

/// Alternates between `high` and `low` every `half_period_slots` slots,
/// starting high — the Figure-6 workload (200 min = 20 slots per phase).
#[derive(Clone, Debug)]
pub struct SquareWave {
    pub high: Vec<f64>,
    pub low: Vec<f64>,
    pub half_period_slots: usize,
}

impl ArrivalProcess for SquareWave {
    fn rates(&mut self, t: usize) -> Vec<f64> {
        if (t / self.half_period_slots.max(1)).is_multiple_of(2) {
            self.high.clone()
        } else {
            self.low.clone()
        }
    }
}

/// `before` until slot `at` (exclusive), `after` from then on — the
/// Figure-7 workload (rate step at 300 min = slot 30).
#[derive(Clone, Debug)]
pub struct StepAt {
    pub at: usize,
    pub before: Vec<f64>,
    pub after: Vec<f64>,
}

impl ArrivalProcess for StepAt {
    fn rates(&mut self, t: usize) -> Vec<f64> {
        if t < self.at {
            self.before.clone()
        } else {
            self.after.clone()
        }
    }
}

/// Sinusoidal drift around a mean: gradual diurnal-style variation.
#[derive(Clone, Debug)]
pub struct SineWave {
    pub mean: Vec<f64>,
    /// Relative amplitude in `[0, 1)`.
    pub amplitude: f64,
    pub period_slots: usize,
}

impl ArrivalProcess for SineWave {
    fn rates(&mut self, t: usize) -> Vec<f64> {
        let phase = 2.0 * std::f64::consts::PI * (t as f64) / self.period_slots.max(1) as f64;
        let s = 1.0 + self.amplitude * phase.sin();
        self.mean.iter().map(|r| r * s).collect()
    }
}

/// Baseline rate with multiplicative spikes every `every_slots` slots,
/// lasting one slot — unexpected shocks.
#[derive(Clone, Debug)]
pub struct SpikeTrain {
    pub base: Vec<f64>,
    pub spike_factor: f64,
    pub every_slots: usize,
}

impl ArrivalProcess for SpikeTrain {
    fn rates(&mut self, t: usize) -> Vec<f64> {
        let f = if t > 0 && t.is_multiple_of(self.every_slots) {
            self.spike_factor
        } else {
            1.0
        };
        self.base.iter().map(|r| r * f).collect()
    }
}

/// A realistic production-style arrival process: a diurnal sine base,
/// multiplicative log-normal-ish slot noise, and occasional bursts —
/// the "gradual drifts/unexpected changes" combination of Section 1 in
/// one generator. Deterministic per seed.
#[derive(Clone, Debug)]
pub struct DiurnalBursty {
    pub mean: Vec<f64>,
    /// Diurnal amplitude in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Slots per simulated day.
    pub day_slots: usize,
    /// Relative std-dev of per-slot noise (e.g. 0.05).
    pub noise_std: f64,
    /// Probability a slot is a burst.
    pub burst_prob: f64,
    /// Burst multiplier (e.g. 2.0).
    pub burst_factor: f64,
    rng: dragster_sim::Rng,
}

impl DiurnalBursty {
    pub fn new(mean: Vec<f64>, seed: u64) -> DiurnalBursty {
        DiurnalBursty {
            mean,
            diurnal_amplitude: 0.3,
            day_slots: 144, // 24 h of 10-minute slots
            noise_std: 0.05,
            burst_prob: 0.03,
            burst_factor: 2.0,
            rng: dragster_sim::Rng::new(seed),
        }
    }
}

impl ArrivalProcess for DiurnalBursty {
    fn rates(&mut self, t: usize) -> Vec<f64> {
        let phase = 2.0 * std::f64::consts::PI * (t as f64) / self.day_slots.max(1) as f64;
        let diurnal = 1.0 + self.diurnal_amplitude * phase.sin();
        let noise = (1.0 + self.rng.normal(0.0, self.noise_std)).max(0.05);
        let burst = if self.rng.uniform() < self.burst_prob {
            self.burst_factor
        } else {
            1.0
        };
        self.mean
            .iter()
            .map(|r| r * diurnal * noise * burst)
            .collect()
    }
}

/// Replays a recorded per-slot rate trace; clamps to the last entry
/// afterwards.
#[derive(Clone, Debug)]
pub struct TraceArrival(pub Vec<Vec<f64>>);

impl ArrivalProcess for TraceArrival {
    fn rates(&mut self, t: usize) -> Vec<f64> {
        let idx = t.min(self.0.len().saturating_sub(1));
        self.0[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_wave_flips_every_half_period() {
        let mut w = SquareWave {
            high: vec![100.0],
            low: vec![30.0],
            half_period_slots: 20,
        };
        assert_eq!(w.rates(0), vec![100.0]);
        assert_eq!(w.rates(19), vec![100.0]);
        assert_eq!(w.rates(20), vec![30.0]);
        assert_eq!(w.rates(39), vec![30.0]);
        assert_eq!(w.rates(40), vec![100.0]);
    }

    #[test]
    fn step_switches_once() {
        let mut s = StepAt {
            at: 30,
            before: vec![1.0],
            after: vec![2.0],
        };
        assert_eq!(s.rates(29), vec![1.0]);
        assert_eq!(s.rates(30), vec![2.0]);
        assert_eq!(s.rates(99), vec![2.0]);
    }

    #[test]
    fn sine_oscillates_within_amplitude() {
        let mut s = SineWave {
            mean: vec![100.0],
            amplitude: 0.3,
            period_slots: 24,
        };
        let vals: Vec<f64> = (0..48).map(|t| s.rates(t)[0]).collect();
        let max = vals.iter().copied().fold(f64::MIN, f64::max);
        let min = vals.iter().copied().fold(f64::MAX, f64::min);
        assert!(max <= 130.0 + 1e-9 && max > 125.0);
        assert!((70.0 - 1e-9..75.0).contains(&min));
    }

    #[test]
    fn spikes_fire_on_schedule() {
        let mut s = SpikeTrain {
            base: vec![10.0],
            spike_factor: 5.0,
            every_slots: 7,
        };
        assert_eq!(s.rates(0), vec![10.0]);
        assert_eq!(s.rates(7), vec![50.0]);
        assert_eq!(s.rates(8), vec![10.0]);
        assert_eq!(s.rates(14), vec![50.0]);
    }

    #[test]
    fn trace_replays_and_clamps() {
        let mut tr = TraceArrival(vec![vec![1.0], vec![2.0], vec![3.0]]);
        assert_eq!(tr.rates(0), vec![1.0]);
        assert_eq!(tr.rates(2), vec![3.0]);
        assert_eq!(tr.rates(10), vec![3.0]);
    }

    #[test]
    fn diurnal_bursty_is_positive_and_seed_deterministic() {
        let mut a = DiurnalBursty::new(vec![100.0], 9);
        let mut b = DiurnalBursty::new(vec![100.0], 9);
        let mut saw_burst = false;
        for t in 0..300 {
            let ra = a.rates(t);
            let rb = b.rates(t);
            assert_eq!(ra, rb, "seeded determinism");
            assert!(ra[0] > 0.0);
            if ra[0] > 180.0 {
                saw_burst = true;
            }
        }
        assert!(saw_burst, "300 slots at 3 % burst prob should burst");
    }

    #[test]
    fn diurnal_cycle_shape() {
        // with noise and bursts off, the cycle is a clean sine
        let mut a = DiurnalBursty::new(vec![100.0], 1);
        a.noise_std = 0.0;
        a.burst_prob = 0.0;
        let peak = a.rates(36)[0]; // quarter-day: sin = 1
        let trough = a.rates(108)[0]; // three-quarter day: sin = −1
        assert!((peak - 130.0).abs() < 1e-9);
        assert!((trough - 70.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_arrival_applies_profile() {
        let mut a = ScaledArrival {
            base: vec![10.0, 20.0],
            profile: |t: usize| t as f64,
        };
        assert_eq!(a.rates(2), vec![20.0, 40.0]);
    }
}
