//! Workload models: the 11 applications of the paper's evaluation
//! (Section 6.1) and the time-varying arrival processes of Sections
//! 6.4–6.5.
//!
//! * [`nexmark`] — the five Nexmark-derived applications (AsyncIO, Join,
//!   Window, Group, WordCount), each under a high and a low source rate
//!   (5 × 2 = 10 workloads).
//! * [`yahoo`] — the Yahoo streaming benchmark: the 6-operator
//!   advertisement-analytics DAG of Figure 3 (the 11th workload).
//! * [`arrival`] — square-wave (Fig. 6's every-200-minutes load flip),
//!   step (Fig. 7's one-time increase), sine, spike, and recorded-trace
//!   arrival processes.
//!
//! Each workload couples a validated topology with ground-truth capacity
//! models whose *shapes* mirror the real operators: near-linear with
//! coordination contention for CPU-bound operators, saturating for
//! external-service-bound ones (Redis join / AsyncIO), so the capacity
//! functions are "non-linear and multi-modal" as Section 1 stresses.
//! Absolute rates are calibrated so WordCount converges around
//! 1.5×10⁵ tuples/s, matching the scale implied by Table 2
//! (1.81×10⁹ tuples per 200 min).

pub mod arrival;
pub mod nexmark;
pub mod yahoo;

pub use arrival::{
    DiurnalBursty, ScaledArrival, SineWave, SpikeTrain, SquareWave, StepAt, TraceArrival,
};
pub use nexmark::{async_io, category_avg, fraud_detect, group, join, window, word_count};
pub use yahoo::yahoo_benchmark;

use dragster_sim::{Application, SimError};

/// A named benchmark application with its two evaluation rates.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name ("WordCount", "Yahoo", …).
    pub name: String,
    /// The application (topology + ground-truth capacity models).
    pub app: Application,
    /// The high source-rate vector (one entry per source).
    pub high_rate: Vec<f64>,
    /// The low source-rate vector.
    pub low_rate: Vec<f64>,
}

impl Workload {
    /// Number of operators.
    pub fn n_operators(&self) -> usize {
        self.app.n_operators()
    }
}

/// The full 11-workload suite of Figure 5: five Nexmark applications under
/// two rates each, plus the Yahoo streaming benchmark (high rate).
/// Returns `(workload, rate-vector, label)` triples ordered by operator
/// count, as Figure 5 sorts them.
pub fn figure5_suite() -> Result<Vec<(Workload, Vec<f64>, String)>, SimError> {
    let mut out = Vec::new();
    for w in [group()?, async_io()?, join()?, window()?, word_count()?] {
        let hi = w.high_rate.clone();
        let lo = w.low_rate.clone();
        let hi_label = format!("{}-high", w.name);
        out.push((w.clone(), lo, format!("{}-low", w.name)));
        out.push((w, hi, hi_label));
    }
    let y = yahoo_benchmark()?;
    let hi = y.high_rate.clone();
    out.push((y, hi, "Yahoo".into()));
    out.sort_by_key(|(w, _, _)| w.n_operators());
    Ok(out)
}

/// The paper's 11 workloads plus the two extended applications
/// (CategoryAvg, FraudDetect) under their high rates — used by the
/// extended-baselines comparison.
pub fn extended_suite() -> Result<Vec<(Workload, Vec<f64>, String)>, SimError> {
    let mut out = figure5_suite()?;
    for w in [category_avg()?, fraud_detect()?] {
        let hi = w.high_rate.clone();
        let label = format!("{}-high", w.name);
        out.push((w, hi, label));
    }
    out.sort_by_key(|(w, _, _)| w.n_operators());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_workloads() {
        let suite = figure5_suite().unwrap();
        assert_eq!(suite.len(), 11);
        // sorted by operator count
        for pair in suite.windows(2) {
            assert!(pair[0].0.n_operators() <= pair[1].0.n_operators());
        }
        // labels unique
        let labels: std::collections::HashSet<_> =
            suite.iter().map(|(_, _, l)| l.clone()).collect();
        assert_eq!(labels.len(), 11);
    }

    #[test]
    fn extended_suite_adds_two() {
        assert_eq!(extended_suite().unwrap().len(), 13);
        assert_eq!(category_avg().unwrap().n_operators(), 2);
        assert_eq!(fraud_detect().unwrap().n_operators(), 3);
    }

    #[test]
    fn operator_counts_match_paper() {
        // "Group, AsyncIO, and Join have one operator, while Window and
        // WordCount have two" and Yahoo has six (Section 6.3/6.5).
        assert_eq!(group().unwrap().n_operators(), 1);
        assert_eq!(async_io().unwrap().n_operators(), 1);
        assert_eq!(join().unwrap().n_operators(), 1);
        assert_eq!(window().unwrap().n_operators(), 2);
        assert_eq!(word_count().unwrap().n_operators(), 2);
        assert_eq!(yahoo_benchmark().unwrap().n_operators(), 6);
    }
}
