//! The five Nexmark-derived applications of Section 6.1.
//!
//! Nexmark [Tucker et al.] models an online-auction stream (persons, bids,
//! auctions). The paper picks "AsyncIO, Join, Window, Group, and
//! WordCount"; per Section 6.3, Group/AsyncIO/Join have one operator and
//! Window/WordCount have two. Rates are tuples/second; capacity models are
//! per-task tuples/second with realistic contention/saturation.

use crate::Workload;
use dragster_dag::{ThroughputFn, TopologyBuilder};
use dragster_sim::{Application, CapacityModel, SimError};

/// WordCount: `source → map (split) → shuffle (count) → sink`.
/// The Figure-4/6 workhorse: a two-operator chain where the downstream
/// shuffle is slower per task, so the optimal allocation is asymmetric.
pub fn word_count() -> Result<Workload, SimError> {
    let topo = TopologyBuilder::new()
        .source("lines")
        .operator("Map")
        .operator("Shuffle")
        .sink("counts")
        .edge("lines", "Map")
        .edge_with(
            "Map",
            "Shuffle",
            ThroughputFn::Linear { weights: vec![1.0] },
            1.0,
        )
        .edge("Shuffle", "counts")
        .build()?;
    let app = Application::new(
        topo,
        vec![
            // Map splits lines into words — CPU-bound, mild contention.
            CapacityModel::Contended {
                per_task: 3.5e4,
                contention: 0.04,
            },
            // Shuffle/count — keyed state access, heavier contention.
            CapacityModel::Contended {
                per_task: 2.5e4,
                contention: 0.06,
            },
        ],
    )?;
    Ok(Workload {
        name: "WordCount".into(),
        app,
        high_rate: vec![1.5e5],
        low_rate: vec![5.0e4],
    })
}

/// Window: `source → window-assign → aggregate → sink`. The aggregate
/// emits one result per window pane (selectivity 0.2).
pub fn window() -> Result<Workload, SimError> {
    let topo = TopologyBuilder::new()
        .source("events")
        .operator("WindowAssign")
        .operator("Aggregate")
        .sink("results")
        .edge("events", "WindowAssign")
        .edge_with(
            "WindowAssign",
            "Aggregate",
            ThroughputFn::Linear { weights: vec![1.0] },
            1.0,
        )
        .edge("Aggregate", "results")
        .build()?;
    let app = Application::new(
        topo,
        vec![
            CapacityModel::Contended {
                per_task: 4.0e4,
                contention: 0.03,
            },
            CapacityModel::Contended {
                per_task: 2.0e4,
                contention: 0.05,
            },
        ],
    )?;
    Ok(Workload {
        name: "Window".into(),
        app,
        high_rate: vec![1.2e5],
        low_rate: vec![4.0e4],
    })
}

/// Group: `source → group-by → sink`. A single keyed aggregation operator.
pub fn group() -> Result<Workload, SimError> {
    let topo = TopologyBuilder::new()
        .source("bids")
        .operator("GroupBy")
        .sink("out")
        .edge("bids", "GroupBy")
        .edge("GroupBy", "out")
        .build()?;
    let app = Application::new(
        topo,
        vec![CapacityModel::Contended {
            per_task: 3.0e4,
            contention: 0.05,
        }],
    )?;
    Ok(Workload {
        name: "Group".into(),
        app,
        high_rate: vec![1.8e5],
        low_rate: vec![6.0e4],
    })
}

/// AsyncIO: `source → async-enrich → sink`. The operator calls an external
/// service, so aggregate capacity *saturates* — the canonical non-linear
/// capacity function Dragster's GP has to learn and DS2's linear model
/// gets wrong.
pub fn async_io() -> Result<Workload, SimError> {
    let topo = TopologyBuilder::new()
        .source("requests")
        .operator("AsyncEnrich")
        .sink("out")
        .edge("requests", "AsyncEnrich")
        .edge("AsyncEnrich", "out")
        .build()?;
    let app = Application::new(
        topo,
        // saturates toward 2.4e5 with half-saturation at 3 tasks
        vec![CapacityModel::Saturating {
            max: 2.4e5,
            half: 3.0,
        }],
    )?;
    Ok(Workload {
        name: "AsyncIO".into(),
        app,
        high_rate: vec![1.5e5],
        low_rate: vec![5.0e4],
    })
}

/// Join: `bids + auctions → join → sink`. Two sources; output tracks the
/// slower (weighted) input (Eq. 2b's `min(k⃗ ∘ ē)` form).
pub fn join() -> Result<Workload, SimError> {
    let topo = TopologyBuilder::new()
        .source("bids")
        .source("auctions")
        .operator("Join")
        .sink("out")
        .edge("bids", "Join")
        .edge("auctions", "Join")
        .edge_with(
            "Join",
            "out",
            ThroughputFn::WeightedMin {
                weights: vec![1.0, 4.0],
            },
            1.0,
        )
        .build()?;
    let app = Application::new(
        topo,
        vec![CapacityModel::Contended {
            per_task: 2.8e4,
            contention: 0.05,
        }],
    )?;
    Ok(Workload {
        name: "Join".into(),
        app,
        high_rate: vec![1.6e5, 4.0e4],
        low_rate: vec![6.0e4, 1.5e4],
    })
}

/// Nexmark Q4-style "average price per category": bids join auctions,
/// then a keyed aggregation — a two-operator, two-source application used
/// by the extended suite (not part of the paper's 11).
pub fn category_avg() -> Result<Workload, SimError> {
    let topo = TopologyBuilder::new()
        .source("bids")
        .source("auctions")
        .operator("JoinCat")
        .operator("AvgPrice")
        .sink("out")
        .edge("bids", "JoinCat")
        .edge("auctions", "JoinCat")
        .edge_with(
            "JoinCat",
            "AvgPrice",
            ThroughputFn::WeightedMin {
                weights: vec![1.0, 6.0],
            },
            1.0,
        )
        .edge_with(
            "AvgPrice",
            "out",
            ThroughputFn::Linear { weights: vec![0.1] },
            1.0,
        )
        .build()?;
    let app = Application::new(
        topo,
        vec![
            CapacityModel::Contended {
                per_task: 2.6e4,
                contention: 0.05,
            },
            CapacityModel::Contended {
                per_task: 3.2e4,
                contention: 0.04,
            },
        ],
    )?;
    Ok(Workload {
        name: "CategoryAvg".into(),
        app,
        high_rate: vec![1.4e5, 2.5e4],
        low_rate: vec![5.0e4, 9.0e3],
    })
}

/// A three-operator fraud-detection chain (parse → score → alert-filter):
/// the scoring stage calls an external model server and saturates. Used by
/// the extended suite.
pub fn fraud_detect() -> Result<Workload, SimError> {
    let topo = TopologyBuilder::new()
        .source("transactions")
        .operator("Parse")
        .operator("Score")
        .operator("AlertFilter")
        .sink("alerts")
        .edge("transactions", "Parse")
        .edge_with(
            "Parse",
            "Score",
            ThroughputFn::Linear { weights: vec![1.0] },
            1.0,
        )
        .edge_with(
            "Score",
            "AlertFilter",
            ThroughputFn::Linear { weights: vec![1.0] },
            1.0,
        )
        .edge_with(
            "AlertFilter",
            "alerts",
            ThroughputFn::Linear {
                weights: vec![0.02],
            },
            1.0,
        )
        .build()?;
    let app = Application::new(
        topo,
        vec![
            CapacityModel::Contended {
                per_task: 5.0e4,
                contention: 0.02,
            },
            CapacityModel::Saturating {
                max: 2.0e5,
                half: 3.5,
            },
            CapacityModel::Contended {
                per_task: 8.0e4,
                contention: 0.02,
            },
        ],
    )?;
    Ok(Workload {
        name: "FraudDetect".into(),
        app,
        high_rate: vec![1.3e5],
        low_rate: vec![4.0e4],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_core::oracle::greedy_optimal;
    use dragster_dag::analysis::check_assumptions;

    #[test]
    fn all_workloads_build_and_validate() {
        for w in [
            word_count().unwrap(),
            window().unwrap(),
            group().unwrap(),
            async_io().unwrap(),
            join().unwrap(),
            category_avg().unwrap(),
            fraud_detect().unwrap(),
        ] {
            assert!(w.n_operators() >= 1);
            assert_eq!(w.high_rate.len(), w.app.topology.n_sources());
            assert_eq!(w.low_rate.len(), w.app.topology.n_sources());
            for (h, l) in w.high_rate.iter().zip(w.low_rate.iter()) {
                assert!(h > l, "{}: high ≤ low", w.name);
            }
        }
    }

    #[test]
    fn concavity_and_monotonicity_hold() {
        for w in [
            word_count().unwrap(),
            window().unwrap(),
            group().unwrap(),
            async_io().unwrap(),
            join().unwrap(),
            category_avg().unwrap(),
            fraud_detect().unwrap(),
        ] {
            let rep = check_assumptions(&w.app.topology, &w.high_rate, 3.0e5, 100).unwrap();
            assert!(rep.holds(1e-6), "{}: {rep:?}", w.name);
        }
    }

    #[test]
    fn high_rate_is_servable_within_grid() {
        // every workload's high rate must be reachable by some config
        // (Slater's condition / Assumption 1).
        for w in [
            word_count().unwrap(),
            window().unwrap(),
            group().unwrap(),
            async_io().unwrap(),
            join().unwrap(),
            category_avg().unwrap(),
            fraud_detect().unwrap(),
        ] {
            let (_, f) = greedy_optimal(&w.app, &w.high_rate, 10, None).unwrap();
            let offered = dragster_dag::throughput(
                &w.app.topology,
                &w.high_rate,
                &vec![f64::INFINITY; w.n_operators()],
            )
            .unwrap();
            assert!(
                f >= 0.95 * offered,
                "{}: best {f} cannot serve offered {offered}",
                w.name
            );
        }
    }

    #[test]
    fn low_rate_needs_fewer_pods() {
        for w in [
            word_count().unwrap(),
            window().unwrap(),
            group().unwrap(),
            async_io().unwrap(),
            join().unwrap(),
        ] {
            let (d_hi, _) = greedy_optimal(&w.app, &w.high_rate, 10, None).unwrap();
            let (d_lo, _) = greedy_optimal(&w.app, &w.low_rate, 10, None).unwrap();
            assert!(
                d_lo.total_pods() < d_hi.total_pods(),
                "{}: lo {d_lo} !< hi {d_hi}",
                w.name
            );
        }
    }

    #[test]
    fn join_output_tracks_scarce_side() {
        let w = join().unwrap();
        let f = dragster_dag::throughput(&w.app.topology, &[1.6e5, 1.0e3], &[1e9]).unwrap();
        // auctions side weighted 4×: output = min(1.6e5, 4e3) = 4e3
        assert!((f - 4.0e3).abs() < 1.0);
    }

    #[test]
    fn async_io_capacity_saturates() {
        let w = async_io().unwrap();
        let c9 = w.app.capacity_models[0].capacity(9);
        let c10 = w.app.capacity_models[0].capacity(10);
        let c1 = w.app.capacity_models[0].capacity(1);
        let c2 = w.app.capacity_models[0].capacity(2);
        assert!(c10 - c9 < (c2 - c1) * 0.3, "not saturating");
    }

    #[test]
    fn fraud_detect_score_stage_saturates() {
        let w = fraud_detect().unwrap();
        let c = &w.app.capacity_models[1];
        assert!(c.capacity(10) - c.capacity(9) < (c.capacity(2) - c.capacity(1)) * 0.4);
    }

    #[test]
    fn category_avg_compresses_heavily() {
        // join output = min(bids, 6×auctions) = min(1.4e5, 1.5e5), then
        // the 10 % aggregation
        let w = category_avg().unwrap();
        let f = dragster_dag::throughput(&w.app.topology, &w.high_rate, &[1e9, 1e9]).unwrap();
        assert!((f - 1.4e5 * 0.1).abs() < 1.0, "{f}");
    }

    #[test]
    fn wordcount_optimum_is_asymmetric() {
        let w = word_count().unwrap();
        let (d, _) = greedy_optimal(&w.app, &w.high_rate, 10, None).unwrap();
        assert!(
            d.tasks[1] > d.tasks[0],
            "Shuffle should need more tasks than Map: {d}"
        );
    }
}
