//! The Yahoo streaming benchmark (Figure 3): an advertisement-analytics
//! pipeline "identifying relevant events from a number of advertising
//! campaigns and advertisements" with **six operators** and thus a joint
//! configuration space of 10⁶ points (Section 6.5).
//!
//! Pipeline (following the published benchmark and Figure 3):
//!
//! ```text
//! kafka → Deserialize → EventFilter → Projection → RedisJoin
//!       → CampaignWindow → SinkWriter → redis-sink
//! ```
//!
//! * `Deserialize` — JSON parsing, CPU-bound, near-linear.
//! * `EventFilter` — keeps only "view" events (selectivity ⅓).
//! * `Projection` — drops fields, very fast per task.
//! * `RedisJoin` — joins each event with campaign metadata in Redis; the
//!   external store saturates the aggregate rate.
//! * `CampaignWindow` — 10-second campaign windows, keyed state.
//! * `SinkWriter` — batches window results into Redis.

use crate::Workload;
use dragster_dag::{ThroughputFn, TopologyBuilder};
use dragster_sim::{Application, CapacityModel, SimError};

/// Build the 6-operator Yahoo streaming benchmark.
pub fn yahoo_benchmark() -> Result<Workload, SimError> {
    let lin = |w: f64| ThroughputFn::Linear { weights: vec![w] };
    let topo = TopologyBuilder::new()
        .source("kafka")
        .operator("Deserialize")
        .operator("EventFilter")
        .operator("Projection")
        .operator("RedisJoin")
        .operator("CampaignWindow")
        .operator("SinkWriter")
        .sink("redis")
        .edge("kafka", "Deserialize")
        .edge_with("Deserialize", "EventFilter", lin(1.0), 1.0)
        // only "view" events survive the filter
        .edge_with("EventFilter", "Projection", lin(1.0 / 3.0), 1.0)
        .edge_with("Projection", "RedisJoin", lin(1.0), 1.0)
        .edge_with("RedisJoin", "CampaignWindow", lin(1.0), 1.0)
        // windows aggregate events into per-campaign counts
        .edge_with("CampaignWindow", "SinkWriter", lin(0.5), 1.0)
        .edge_with("SinkWriter", "redis", lin(1.0), 1.0)
        .build()?;
    let app = Application::new(
        topo,
        vec![
            // Deserialize: JSON parse, CPU-bound
            CapacityModel::Contended {
                per_task: 6.0e4,
                contention: 0.02,
            },
            // EventFilter: cheap predicate
            CapacityModel::Contended {
                per_task: 9.0e4,
                contention: 0.02,
            },
            // Projection: trivial per tuple
            CapacityModel::Contended {
                per_task: 1.1e5,
                contention: 0.02,
            },
            // RedisJoin: external store saturates
            CapacityModel::Saturating {
                max: 2.5e5,
                half: 2.5,
            },
            // CampaignWindow: keyed state, contention grows with tasks
            CapacityModel::Contended {
                per_task: 3.0e4,
                contention: 0.08,
            },
            // SinkWriter: batched writes
            CapacityModel::Contended {
                per_task: 4.0e4,
                contention: 0.03,
            },
        ],
    )?;
    Ok(Workload {
        name: "Yahoo".into(),
        app,
        // Paper's processing rate is ~2×10⁵ events/s before convergence;
        // the high offered load makes the optimum use ~26 pods, so the
        // linear search of Dhalion needs ~20 adjustment slots (Fig. 7).
        high_rate: vec![4.8e5],
        low_rate: vec![2.4e5],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_core::oracle::greedy_optimal;
    use dragster_dag::analysis::check_assumptions;

    #[test]
    fn has_six_operators_and_million_configs() {
        let w = yahoo_benchmark().unwrap();
        assert_eq!(w.n_operators(), 6);
        assert_eq!(10usize.pow(6), 1_000_000);
    }

    #[test]
    fn assumptions_hold() {
        let w = yahoo_benchmark().unwrap();
        let rep = check_assumptions(&w.app.topology, &w.high_rate, 3.0e5, 80).unwrap();
        assert!(rep.holds(1e-6), "{rep:?}");
    }

    #[test]
    fn high_rate_servable() {
        let w = yahoo_benchmark().unwrap();
        let (_, f) = greedy_optimal(&w.app, &w.high_rate, 10, None).unwrap();
        let offered =
            dragster_dag::throughput(&w.app.topology, &w.high_rate, &[f64::INFINITY; 6]).unwrap();
        assert!(f >= 0.95 * offered, "best {f} vs offered {offered}");
    }

    #[test]
    fn selectivities_compress_the_stream() {
        let w = yahoo_benchmark().unwrap();
        // with unlimited capacity the sink sees rate × 1/3 × 0.5
        let f = dragster_dag::throughput(&w.app.topology, &[2.4e5], &[f64::INFINITY; 6]).unwrap();
        assert!((f - 2.4e5 / 3.0 * 0.5).abs() < 1.0, "{f}");
    }

    #[test]
    fn redis_join_is_a_structural_bottleneck_at_scale() {
        // Even at max tasks, the saturating RedisJoin caps what a huge
        // offered load can push through.
        let w = yahoo_benchmark().unwrap();
        let caps = w.app.true_capacities(&[10; 6]);
        let f = dragster_dag::throughput(&w.app.topology, &[5.0e6], &caps).unwrap();
        // the pipeline caps well below the offered load: the join passes
        // at most 2.5e5·10/12.5 = 2e5, halved by the window = 1e5.
        assert!(f <= 1.01e5, "{f}");
    }

    #[test]
    fn oracle_allocation_respects_pipeline_shape() {
        let w = yahoo_benchmark().unwrap();
        let (d, _) = greedy_optimal(&w.app, &w.high_rate, 10, None).unwrap();
        // Projection is the fastest per task and sees only 1/3 of the
        // stream: it must need fewer tasks than Deserialize.
        let names: Vec<&str> = (0..6).map(|i| w.app.topology.operator_name(i)).collect();
        let idx = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(
            d.tasks[idx("Projection")] <= d.tasks[idx("Deserialize")],
            "{names:?} -> {d}"
        );
    }
}
