//! Bring your own application: a diamond-shaped enrichment pipeline with a
//! join, a saturating external-service operator, and a pod budget. Shows
//! the full public-API surface a downstream user touches: topology
//! builder with explicit throughput functions and splitting weights,
//! capacity models, budgeted cluster config, and the regret tracker.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use dragster::core::{greedy_optimal, Dragster, DragsterConfig, RegretTracker};
use dragster::dag::{ThroughputFn, TopologyBuilder};
use dragster::sim::fluid::SimConfig;
use dragster::sim::{
    run_experiment, Application, CapacityModel, ClusterConfig, Deployment, FluidSim, NoiseConfig,
};
use dragster::workloads::SineWave;

fn main() {
    // events fan out 70/30 into a fast path and an enrichment path that
    // calls an external service; the two paths join before the sink.
    let topology = TopologyBuilder::new()
        .source("events")
        .operator("router")
        .operator("fast_path")
        .operator("enrich")
        .operator("join")
        .sink("out")
        .edge("events", "router")
        .edge_with(
            "router",
            "fast_path",
            ThroughputFn::Linear { weights: vec![0.7] },
            0.7,
        )
        .edge_with(
            "router",
            "enrich",
            ThroughputFn::Linear { weights: vec![0.3] },
            0.3,
        )
        .edge("fast_path", "join")
        .edge("enrich", "join")
        .edge_with(
            "join",
            "out",
            // both branches must arrive: output follows the (weighted)
            // scarcer input
            ThroughputFn::WeightedMin {
                weights: vec![1.43, 3.33],
            },
            1.0,
        )
        .build()
        .expect("valid topology");

    let app = Application::new(
        topology.clone(),
        vec![
            CapacityModel::Contended {
                per_task: 50_000.0,
                contention: 0.03,
            }, // router
            CapacityModel::Linear { per_task: 40_000.0 }, // fast_path
            CapacityModel::Saturating {
                max: 60_000.0,
                half: 2.0,
            }, // enrich (external)
            CapacityModel::Contended {
                per_task: 35_000.0,
                contention: 0.05,
            }, // join
        ],
    )
    .expect("valid models");

    // Budget: 24 pods max.
    let budget = Some(24);
    let cluster = ClusterConfig {
        budget_pods: budget,
        ..Default::default()
    };
    let mut sim = FluidSim::new(
        app.clone(),
        cluster,
        SimConfig::default(),
        NoiseConfig::default(),
        3,
        Deployment::uniform(4, 1),
    )
    .unwrap();
    let cfg = DragsterConfig {
        budget_pods: budget,
        ..DragsterConfig::saddle_point()
    };
    let mut dragster = Dragster::new(topology, cfg);

    // Gradually drifting load (±20 % sine, period 8 hours).
    let mut arrival = SineWave {
        mean: vec![120_000.0],
        amplitude: 0.2,
        period_slots: 48,
    };
    let slots = 96;
    let trace = run_experiment(&mut sim, &mut dragster, &mut arrival, slots).unwrap();

    // Regret accounting against the per-slot clairvoyant optimum.
    let mut arrival2 = SineWave {
        mean: vec![120_000.0],
        amplitude: 0.2,
        period_slots: 48,
    };
    let mut tracker = RegretTracker::new();
    for t in 0..slots {
        let rates = dragster::sim::ArrivalProcess::rates(&mut arrival2, t);
        let (_, opt) = greedy_optimal(&app, &rates, 10, budget).unwrap();
        let l: Vec<f64> = trace.slots[t]
            .operators
            .iter()
            .map(|o| o.offered_load - o.capacity_sample)
            .collect();
        tracker.record(opt, trace.ideal_throughput[t], &l);
    }

    println!("diamond pipeline under a 24-pod budget, drifting load, {slots} slots\n");
    println!(
        "cumulative regret {:.3e} tuples/s·slots over {} slots (mean gap {:.1} % of optimal)",
        tracker.regret(),
        slots,
        tracker.regret()
            / tracker.len() as f64
            / (trace.ideal_throughput.iter().sum::<f64>() / slots as f64)
            * 100.0
    );
    let series = tracker.regret_series();
    if let Some(exp) = RegretTracker::growth_exponent(&series) {
        println!("regret growth exponent {exp:.2} (sub-linear < 1)");
    }
    println!(
        "budget respected in every slot: {}",
        trace.deployments.iter().all(|d| d.total_pods() <= 24)
    );
    println!(
        "final deployment {} ({} pods)",
        trace.deployments.last().expect("non-empty"),
        trace.deployments.last().expect("non-empty").total_pods()
    );
}
