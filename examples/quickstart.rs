//! Quickstart: autoscale a two-operator WordCount pipeline with Dragster
//! and watch it converge to the optimal configuration.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dragster::core::{greedy_optimal, Dragster, DragsterConfig};
use dragster::dag::TopologyBuilder;
use dragster::sim::fluid::SimConfig;
use dragster::sim::{
    run_experiment, Application, CapacityModel, ClusterConfig, ConstantArrival, Deployment,
    FluidSim, NoiseConfig,
};

fn main() {
    // 1. Describe the application DAG: source → map → shuffle → sink.
    //    Edges carry throughput functions h_{i,j}; the defaults forward
    //    everything (identity-linear).
    let topology = TopologyBuilder::new()
        .source("lines")
        .operator("map")
        .operator("shuffle")
        .sink("counts")
        .edge("lines", "map")
        .edge("map", "shuffle")
        .edge("shuffle", "counts")
        .build()
        .expect("valid topology");

    // 2. Ground truth the *simulator* knows but the controller must learn:
    //    how service capacity scales with the number of parallel tasks.
    let app = Application::new(
        topology.clone(),
        vec![
            CapacityModel::Contended {
                per_task: 30_000.0,
                contention: 0.04,
            },
            CapacityModel::Contended {
                per_task: 20_000.0,
                contention: 0.06,
            },
        ],
    )
    .expect("valid capacity models");

    // 3. A simulated Flink-on-Kubernetes cluster, starting from one task
    //    per operator.
    let mut sim = FluidSim::new(
        app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        7,
        Deployment::uniform(2, 1),
    )
    .unwrap();

    // 4. The Dragster controller (online saddle point + extended GP-UCB).
    let mut dragster = Dragster::new(topology, DragsterConfig::saddle_point());

    // 5. Run 15 ten-minute decision slots at 100k tuples/s offered load.
    let offered = vec![100_000.0];
    let mut arrival = ConstantArrival(offered.clone());
    let trace = run_experiment(&mut sim, &mut dragster, &mut arrival, 15).unwrap();

    // 6. Compare against the clairvoyant optimum.
    let (opt_deploy, opt_throughput) = greedy_optimal(&app, &offered, 10, None).unwrap();
    println!("oracle optimum: {opt_deploy} @ {opt_throughput:.0} tuples/s\n");
    println!("slot | deployment | throughput | of optimal");
    for (t, slot) in trace.slots.iter().enumerate() {
        println!(
            "{:>4} | {:>10} | {:>9.0}/s | {:>5.1} %",
            t,
            format!("{}", trace.deployments[t]),
            slot.throughput,
            trace.ideal_throughput[t] / opt_throughput * 100.0
        );
    }
    println!(
        "\nprocessed {:.2}e9 tuples for ${:.2} (${:.2} per billion)",
        trace.total_processed() / 1e9,
        trace.total_cost(),
        trace.cost_per_billion_tuples()
    );
}
