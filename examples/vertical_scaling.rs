//! Multi-dimensional configurations: the paper's `x_i` is in general a
//! vector — "the number of executors, CPU cores, and memory size"
//! (Section 4.2.2, via the K8s Vertical Pod Autoscaler) — though its
//! evaluation sweeps only the task count. This example exercises the
//! general case end to end with the GP layer directly: a 2-D
//! configuration space (tasks × CPU-per-task), the extended tracking
//! acquisition of Eq. 18 over all 30 candidates, and a cost-aware pick.
//!
//! ```text
//! cargo run --release --example vertical_scaling
//! ```

use dragster::gp::{beta_t, GpRegressor, SquaredExp};
use dragster::sim::Rng;

/// Ground truth the controller must learn: capacity grows linearly in
/// tasks with coordination contention, and sub-linearly in CPU share
/// (memory-bandwidth-bound beyond one core).
fn true_capacity(tasks: f64, cpu: f64) -> f64 {
    35_000.0 * tasks / (1.0 + 0.05 * (tasks - 1.0)) * cpu.powf(0.8)
}

fn main() {
    // Configuration grid: 10 task counts × 3 pod sizes = 30 candidates.
    let cpu_options = [0.5, 1.0, 2.0];
    let grid: Vec<(f64, f64)> = (1..=10)
        .flat_map(|t| cpu_options.iter().map(move |&c| (t as f64, c)))
        .collect();
    let cost_of = |(t, c): (f64, f64)| t * c; // pods × size

    // The capacity target to track ("just enough" for the offered load).
    let target = 180_000.0;
    let scale = 500_000.0; // normalization

    // 2-D GP over (tasks, cpu) — the d>1 case of Eq. 7/17. Inputs are
    // normalized per dimension so one length scale serves both.
    let mut gp = GpRegressor::new(SquaredExp::new(0.3), 0.01);
    let feat = |(t, c): (f64, f64)| vec![t / 10.0, c / 2.0];

    let mut rng = Rng::new(42);
    let mut chosen = (1.0, 1.0);
    println!("slot | config (tasks × cpu) | sample (k/s) | target-tracking pick");
    for t in 1..=20usize {
        // observe the current config (noisy Eq.-8-style sample)
        let sample = true_capacity(chosen.0, chosen.1) * (1.0 + rng.normal(0.0, 0.04));
        gp.observe(&feat(chosen), sample / scale)
            .expect("GP update succeeds");

        // extended acquisition: −|μ − y_t| + β σ², deficit-weighted, with
        // a cost tie-break (cheaper config wins near-equal acquisitions)
        let beta = beta_t(grid.len(), t, 2.0) * 0.05;
        let mut best = (grid[0], f64::NEG_INFINITY);
        for &cand in &grid {
            let p = gp.posterior(&feat(cand));
            let diff = p.mean - target / scale;
            let penalty = if diff >= 0.0 { diff } else { -diff * 3.0 };
            let acq = -penalty + beta * p.var - 1e-4 * cost_of(cand);
            if acq > best.1 {
                best = (cand, acq);
            }
        }
        println!(
            "{:>4} | {:>5} × {:<4}          | {:>8.0}     | -> {:?}",
            t,
            chosen.0,
            chosen.1,
            sample / 1000.0,
            best.0
        );
        chosen = best.0;
    }

    let achieved = true_capacity(chosen.0, chosen.1);
    println!(
        "\nfinal config: {} tasks × {} cpu = {:.1} pod-equivalents, capacity {:.0}/s (target {target:.0})",
        chosen.0,
        chosen.1,
        cost_of(chosen),
        achieved
    );
    assert!(achieved >= target * 0.9, "missed the target");

    // Show the learned surface against the truth on a few probes.
    println!("\nlearned capacity surface (GP mean vs truth, k tuples/s):");
    for &(t, c) in &[(2.0, 1.0), (5.0, 0.5), (5.0, 2.0), (8.0, 1.0), (10.0, 2.0)] {
        let p = gp.posterior(&feat((t, c)));
        println!(
            "  {t:>4} tasks × {c:<3} cpu: {:>6.0} / {:>6.0} (σ {:.0})",
            p.mean * scale / 1000.0,
            true_capacity(t, c) / 1000.0,
            p.std() * scale / 1000.0
        );
    }
}
