//! WordCount under workload changes: the Section-6.4 scenario as a
//! runnable example. The offered load flips between high and low every
//! 200 minutes; Dragster (both variants) and Dhalion race to re-converge,
//! and we print the per-phase scorecard.
//!
//! ```text
//! cargo run --release --example wordcount_autoscale
//! ```

use dragster::baselines::{Dhalion, DhalionConfig};
use dragster::core::{Dragster, DragsterConfig};
use dragster::sim::fluid::SimConfig;
use dragster::sim::{
    run_experiment, Autoscaler, ClusterConfig, Deployment, FluidSim, NoiseConfig, Trace,
};
use dragster::workloads::{word_count, SquareWave};

fn run(scaler: &mut dyn Autoscaler, seed: u64) -> Trace {
    let w = word_count().unwrap();
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        seed,
        Deployment::uniform(2, 1),
    )
    .unwrap();
    let mut arrival = SquareWave {
        high: w.high_rate.clone(),
        low: w.low_rate.clone(),
        half_period_slots: 20,
    };
    run_experiment(&mut sim, scaler, &mut arrival, 100).unwrap()
}

fn main() {
    let w = word_count().unwrap();
    let mut schemes: Vec<Box<dyn Autoscaler>> = vec![
        Box::new(Dhalion::new(DhalionConfig::default())),
        Box::new(Dragster::new(
            w.app.topology.clone(),
            DragsterConfig::saddle_point(),
        )),
        Box::new(Dragster::new(
            w.app.topology.clone(),
            DragsterConfig::gradient_descent(),
        )),
    ];

    println!("WordCount, 1000 minutes, load flips every 200 minutes\n");
    let mut results = Vec::new();
    for scaler in schemes.iter_mut() {
        let trace = run(scaler.as_mut(), 42);
        results.push((scaler.name(), trace));
    }

    println!(
        "{:<26} {:>12} {:>10} {:>12} {:>10}",
        "scheme", "tuples(1e9)", "cost($)", "$/1e9 tuples", "reconfigs"
    );
    for (name, trace) in &results {
        println!(
            "{:<26} {:>12.2} {:>10.2} {:>12.2} {:>10}",
            name,
            trace.total_processed() / 1e9,
            trace.total_cost(),
            trace.cost_per_billion_tuples(),
            trace.slots.iter().filter(|s| s.reconfigured).count(),
        );
    }

    // Phase-by-phase pods: shows the scale-down depth difference that
    // produces the paper's cost savings.
    println!("\nmean pods per 200-minute phase:");
    print!("{:<26}", "scheme");
    for p in 0..5 {
        print!(
            " {:>9}",
            format!("{}({})", p, if p % 2 == 0 { "hi" } else { "lo" })
        );
    }
    println!();
    for (name, trace) in &results {
        print!("{:<26}", name);
        for p in 0..5 {
            let pods: f64 = trace.slots[p * 20..(p + 1) * 20]
                .iter()
                .map(|s| s.pods as f64)
                .sum::<f64>()
                / 20.0;
            print!(" {pods:>9.1}");
        }
        println!();
    }
}
