//! The Yahoo streaming benchmark (Section 6.5): six operators, a million
//! joint configurations, an input-rate step mid-run. Prints the topology
//! in Graphviz DOT, runs Dragster, and reports where the controller
//! believes each operator's capacity curve lies versus the ground truth.
//!
//! ```text
//! cargo run --release --example yahoo_benchmark
//! ```

use dragster::core::{greedy_optimal, Dragster, DragsterConfig};
use dragster::sim::fluid::SimConfig;
use dragster::sim::{run_experiment, ClusterConfig, Deployment, FluidSim, NoiseConfig};
use dragster::workloads::{yahoo_benchmark, StepAt};

fn main() {
    let w = yahoo_benchmark().unwrap();

    println!(
        "--- topology (Graphviz DOT) ---\n{}",
        w.app.topology.to_dot()
    );

    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        42,
        Deployment::uniform(6, 1),
    )
    .unwrap();
    let mut dragster = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let before: Vec<f64> = w.high_rate.iter().map(|r| r * 0.75).collect();
    let mut arrival = StepAt {
        at: 30,
        before: before.clone(),
        after: w.high_rate.clone(),
    };
    let trace = run_experiment(&mut sim, &mut dragster, &mut arrival, 60).unwrap();

    let (opt_lo, f_lo) = greedy_optimal(&w.app, &before, 10, None).unwrap();
    let (opt_hi, f_hi) = greedy_optimal(&w.app, &w.high_rate, 10, None).unwrap();
    println!("oracle: {opt_lo} @ {f_lo:.0}/s before the step, {opt_hi} @ {f_hi:.0}/s after\n");

    for checkpoint in [5usize, 29, 35, 59] {
        println!(
            "slot {:>2}: deployment {} — {:.0} tuples/s ({:.0} % of optimal)",
            checkpoint,
            trace.deployments[checkpoint],
            trace.slots[checkpoint].throughput,
            trace.ideal_throughput[checkpoint] / if checkpoint < 30 { f_lo } else { f_hi } * 100.0
        );
    }

    // What did the GP level learn? Compare posterior capacity estimates to
    // the simulator's ground truth at a few task counts.
    println!("\nlearned capacity curves (GP mean vs ground truth, tuples/s):");
    println!(
        "{:<16} {:>14} {:>14} {:>14}",
        "operator", "2 tasks", "5 tasks", "10 tasks"
    );
    for (i, gp) in dragster.operator_gps().iter().enumerate() {
        let name = w.app.topology.operator_name(i);
        let fmt = |tasks: usize| {
            format!(
                "{:>6.0}/{:<6.0}",
                gp.capacity_estimate(tasks),
                w.app.capacity_models[i].capacity(tasks)
            )
        };
        println!("{name:<16} {:>14} {:>14} {:>14}", fmt(2), fmt(5), fmt(10));
    }
    println!(
        "\n({} capacity observations total; exploration is concentrated where it matters)",
        dragster
            .operator_gps()
            .iter()
            .map(|g| g.len())
            .sum::<usize>()
    );
}
