//! `dragster-cli` — run a declarative autoscaling experiment from a JSON
//! spec (see `specs/wordcount.json` and [`dragster::spec`]).
//!
//! ```text
//! cargo run --release --bin dragster-cli -- specs/wordcount.json
//! cargo run --release --bin dragster-cli -- specs/wordcount.json --json
//! ```

use dragster::spec::ExperimentSpec;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, json_out) = match args.as_slice() {
        [p] => (p.clone(), false),
        [p, flag] if flag == "--json" => (p.clone(), true),
        _ => {
            eprintln!("usage: dragster-cli <spec.json> [--json]");
            return ExitCode::from(2);
        }
    };

    let raw = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match ExperimentSpec::from_json(&raw) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match spec.run() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json_out {
        match serde_json::to_string_pretty(&trace) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("error: serialize: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    println!("scheme: {}", trace.scheme);
    println!("slot | deployment       | throughput/s | pods | buffered");
    for (t, s) in trace.slots.iter().enumerate() {
        println!(
            "{:>4} | {:<16} | {:>12.0} | {:>4} | {:>9.0}",
            t,
            format!("{}", trace.deployments[t]),
            s.throughput,
            s.pods,
            s.total_buffered(),
        );
    }
    println!(
        "\ntotal: {:.3e} tuples, ${:.2} ({:.2} $/1e9 tuples), {} reconfigurations",
        trace.total_processed(),
        trace.total_cost(),
        trace.cost_per_billion_tuples(),
        trace.slots.iter().filter(|s| s.reconfigured).count(),
    );
    ExitCode::SUCCESS
}
