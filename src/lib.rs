//! # Dragster
//!
//! A full-system Rust reproduction of *Online Resource Optimization for
//! Elastic Stream Processing with Regret Guarantee* (Liu, Xu, Lau — ICPP
//! 2022): an online-optimization-based dynamic resource allocation scheme
//! for elastic stream processing with a sub-linear dynamic-regret guarantee.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`gp`] — exact Gaussian-process regression (kernels, Cholesky,
//!   posterior, information gain) — the `sklearn` substitute.
//! * [`autodiff`] — tape-based reverse-mode AD — the PyTorch `autograd`
//!   substitute used for bottleneck identification.
//! * [`dag`] — the stream-processing DAG model: throughput functions
//!   (Eq. 2a–2c), capacity splitting, flow propagation (Eq. 4).
//! * [`sim`] — fluid + discrete-event simulators with a Kubernetes-like
//!   cluster/cost model — the Flink-on-K8s testbed substitute, including
//!   the chaos layer ([`sim::faults`]) and metric sanitization
//!   ([`sim::sanitize`]). The fault surface is re-exported at the crate
//!   root: [`FaultPlan`] scripts deterministic fault scenarios,
//!   [`FaultEvent`] records what fired, [`SanitizeConfig`] tunes the
//!   harness-side metric repair, and [`RetryPolicy`] bounds the
//!   reconfiguration retry backoff.
//! * [`core`] — the Dragster controller: online saddle point (Eq. 13–15),
//!   online gradient descent (Eq. 16), extended GP-UCB (Eq. 18), budget
//!   projection, regret/fit accounting.
//! * [`baselines`] — Dhalion, DS2, static and random autoscalers.
//! * [`workloads`] — Nexmark and Yahoo streaming benchmark models.
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for the
//! paper-to-module map.

pub mod spec;

pub use dragster_autodiff as autodiff;
pub use dragster_baselines as baselines;
pub use dragster_core as core;
pub use dragster_dag as dag;
pub use dragster_gp as gp;
pub use dragster_sim as sim;
pub use dragster_workloads as workloads;

pub use dragster_sim::{
    ExperimentOptions, FaultEvent, FaultKind, FaultPlan, FaultRates, MetricSanitizer, RetryPolicy,
    SanitizeConfig, ScriptedFault,
};
