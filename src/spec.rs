//! Declarative experiment specifications — the `dragster-cli` input format.
//!
//! A JSON spec describes an application (components, edges, capacity
//! models), the cluster, the arrival pattern, and which scheme to run;
//! [`ExperimentSpec::run`] executes it and returns the trace. This is the
//! "operations" surface for users who want to evaluate an autoscaling
//! policy against their own topology without writing Rust.
//!
//! ```json
//! {
//!   "components": [
//!     {"name": "src", "kind": "source"},
//!     {"name": "map", "kind": "operator", "capacity": {"Contended": {"per_task": 30000.0, "contention": 0.04}}},
//!     {"name": "out", "kind": "sink"}
//!   ],
//!   "edges": [
//!     {"from": "src", "to": "map"},
//!     {"from": "map", "to": "out", "selectivity": 1.0}
//!   ],
//!   "arrival": {"constant": [100000.0]},
//!   "scheme": "dragster-saddle",
//!   "slots": 20,
//!   "seed": 42
//! }
//! ```

use dragster_baselines::{Dhalion, DhalionConfig, Ds2, Ds2Config, RandomScaler, StaticScaler};
use dragster_core::{Dragster, DragsterConfig, InnerAlgo};
use dragster_dag::{ThroughputFn, Topology, TopologyBuilder};
use dragster_sim::fluid::SimConfig;
use dragster_sim::{
    run_experiment, Application, ArrivalProcess, Autoscaler, CapacityModel, ClusterConfig,
    Deployment, FluidSim, NoiseConfig, Trace,
};
use dragster_workloads::{SineWave, SquareWave, StepAt};
use serde::{Deserialize, Serialize};

/// One component declaration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ComponentSpec {
    pub name: String,
    /// `"source"`, `"operator"`, or `"sink"`.
    pub kind: String,
    /// Ground-truth capacity model — required for operators, forbidden
    /// otherwise.
    #[serde(default)]
    pub capacity: Option<CapacityModel>,
}

/// One edge declaration. `selectivity` is shorthand for a single-input
/// `Linear` throughput function; `h` gives the full form; at most one of
/// the two may be set (neither = identity default).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EdgeSpec {
    pub from: String,
    pub to: String,
    #[serde(default)]
    pub selectivity: Option<f64>,
    #[serde(default)]
    pub h: Option<ThroughputFn>,
    #[serde(default)]
    pub alpha: Option<f64>,
}

/// The arrival pattern.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ArrivalSpec {
    Constant(Vec<f64>),
    SquareWave {
        high: Vec<f64>,
        low: Vec<f64>,
        half_period_slots: usize,
    },
    StepAt {
        at: usize,
        before: Vec<f64>,
        after: Vec<f64>,
    },
    Sine {
        mean: Vec<f64>,
        amplitude: f64,
        period_slots: usize,
    },
}

impl ArrivalSpec {
    fn build(&self) -> Box<dyn ArrivalProcess> {
        match self.clone() {
            ArrivalSpec::Constant(r) => Box::new(dragster_sim::ConstantArrival(r)),
            ArrivalSpec::SquareWave {
                high,
                low,
                half_period_slots,
            } => Box::new(SquareWave {
                high,
                low,
                half_period_slots,
            }),
            ArrivalSpec::StepAt { at, before, after } => Box::new(StepAt { at, before, after }),
            ArrivalSpec::Sine {
                mean,
                amplitude,
                period_slots,
            } => Box::new(SineWave {
                mean,
                amplitude,
                period_slots,
            }),
        }
    }
}

/// A complete experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentSpec {
    pub components: Vec<ComponentSpec>,
    pub edges: Vec<EdgeSpec>,
    pub arrival: ArrivalSpec,
    /// `"dragster-saddle"`, `"dragster-ogd"`, `"dhalion"`, `"ds2"`,
    /// `"static"`, or `"random"`.
    pub scheme: String,
    pub slots: usize,
    #[serde(default = "default_seed")]
    pub seed: u64,
    #[serde(default)]
    pub budget_pods: Option<usize>,
    /// Initial tasks per operator (default 1).
    #[serde(default = "default_initial_tasks")]
    pub initial_tasks: usize,
}

fn default_seed() -> u64 {
    42
}

fn default_initial_tasks() -> usize {
    1
}

/// Spec-level failures.
#[derive(Debug)]
pub enum SpecError {
    Parse(String),
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(m) => write!(f, "spec parse error: {m}"),
            SpecError::Invalid(m) => write!(f, "invalid spec: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl ExperimentSpec {
    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<ExperimentSpec, SpecError> {
        serde_json::from_str(json).map_err(|e| SpecError::Parse(e.to_string()))
    }

    /// Build the validated application.
    pub fn application(&self) -> Result<Application, SpecError> {
        let mut b = TopologyBuilder::new();
        for c in &self.components {
            b = match c.kind.as_str() {
                "source" => b.source(&c.name),
                "operator" => b.operator(&c.name),
                "sink" => b.sink(&c.name),
                other => {
                    return Err(SpecError::Invalid(format!(
                        "component {:?}: unknown kind {other:?}",
                        c.name
                    )))
                }
            };
        }
        // Edges need predecessor counts for selectivity shorthand; build a
        // quick pred-count pass first.
        let mut pred_count = std::collections::HashMap::<&str, usize>::new();
        for e in &self.edges {
            *pred_count.entry(e.to.as_str()).or_default() += 1;
        }
        for e in &self.edges {
            if e.selectivity.is_some() && e.h.is_some() {
                return Err(SpecError::Invalid(format!(
                    "edge {}→{}: give either selectivity or h, not both",
                    e.from, e.to
                )));
            }
            let n_preds = pred_count.get(e.from.as_str()).copied().unwrap_or(0);
            let h = match (&e.selectivity, &e.h) {
                (Some(s), None) => Some(ThroughputFn::Linear {
                    weights: vec![*s; n_preds.max(1)],
                }),
                (None, Some(h)) => Some(h.clone()),
                _ => None,
            };
            b = match (h, e.alpha) {
                (Some(h), alpha) => b.edge_with(&e.from, &e.to, h, alpha.unwrap_or(1.0)),
                (None, Some(_)) => {
                    return Err(SpecError::Invalid(format!(
                        "edge {}→{}: alpha requires an explicit h",
                        e.from, e.to
                    )))
                }
                (None, None) => b.edge(&e.from, &e.to),
            };
        }
        let topo: Topology = b.build().map_err(|e| SpecError::Invalid(e.to_string()))?;
        let mut models = Vec::new();
        for id in topo.operator_ids() {
            let name = &topo.component(id).name;
            let spec = self
                .components
                .iter()
                .find(|c| &c.name == name)
                .ok_or_else(|| SpecError::Invalid(format!("operator {name:?} missing")))?;
            let model = spec.capacity.clone().ok_or_else(|| {
                SpecError::Invalid(format!("operator {name:?} needs a capacity model"))
            })?;
            models.push(model);
        }
        for c in &self.components {
            if c.kind != "operator" && c.capacity.is_some() {
                return Err(SpecError::Invalid(format!(
                    "{:?} is a {} and cannot carry a capacity model",
                    c.name, c.kind
                )));
            }
        }
        Application::new(topo, models).map_err(|e| SpecError::Invalid(e.to_string()))
    }

    /// Instantiate the chosen scheme.
    pub fn scaler(&self, app: &Application) -> Result<Box<dyn Autoscaler>, SpecError> {
        let budget = self.budget_pods;
        Ok(match self.scheme.as_str() {
            "dragster-saddle" => Box::new(Dragster::new(
                app.topology.clone(),
                DragsterConfig {
                    budget_pods: budget,
                    ..DragsterConfig::saddle_point()
                },
            )),
            "dragster-ogd" => Box::new(Dragster::new(
                app.topology.clone(),
                DragsterConfig {
                    budget_pods: budget,
                    inner: InnerAlgo::GradientDescent,
                    ..DragsterConfig::gradient_descent()
                },
            )),
            "dhalion" => Box::new(Dhalion::new(DhalionConfig {
                budget_pods: budget,
                ..Default::default()
            })),
            "ds2" => Box::new(Ds2::new(Ds2Config {
                budget_pods: budget,
                ..Default::default()
            })),
            "static" => Box::new(StaticScaler),
            "random" => Box::new(RandomScaler::new(self.seed, 10, budget)),
            other => return Err(SpecError::Invalid(format!("unknown scheme {other:?}"))),
        })
    }

    /// Execute the experiment and return the trace.
    pub fn run(&self) -> Result<Trace, SpecError> {
        let app = self.application()?;
        if self.slots == 0 {
            return Err(SpecError::Invalid("slots must be positive".into()));
        }
        let cluster = ClusterConfig {
            budget_pods: self.budget_pods,
            ..Default::default()
        };
        let mut sim = FluidSim::new(
            app.clone(),
            cluster,
            SimConfig::default(),
            NoiseConfig::default(),
            self.seed,
            Deployment::uniform(app.n_operators(), self.initial_tasks),
        )
        .map_err(|e| SpecError::Invalid(e.to_string()))?;
        let mut scaler = self.scaler(&app)?;
        let mut arrival = self.arrival.build();
        run_experiment(&mut sim, scaler.as_mut(), &mut *arrival, self.slots)
            .map_err(|e| SpecError::Invalid(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wordcount_json() -> String {
        r#"{
            "components": [
                {"name": "src", "kind": "source"},
                {"name": "map", "kind": "operator",
                 "capacity": {"Contended": {"per_task": 30000.0, "contention": 0.04}}},
                {"name": "shuffle", "kind": "operator",
                 "capacity": {"Contended": {"per_task": 20000.0, "contention": 0.06}}},
                {"name": "out", "kind": "sink"}
            ],
            "edges": [
                {"from": "src", "to": "map"},
                {"from": "map", "to": "shuffle", "selectivity": 1.0},
                {"from": "shuffle", "to": "out"}
            ],
            "arrival": {"constant": [100000.0]},
            "scheme": "dragster-saddle",
            "slots": 5,
            "seed": 7
        }"#
        .to_string()
    }

    #[test]
    fn parses_and_runs_wordcount() {
        let spec = ExperimentSpec::from_json(&wordcount_json()).unwrap();
        let trace = spec.run().unwrap();
        assert_eq!(trace.len(), 5);
        assert!(trace.total_processed() > 0.0);
    }

    #[test]
    fn every_scheme_name_resolves() {
        for scheme in [
            "dragster-saddle",
            "dragster-ogd",
            "dhalion",
            "ds2",
            "static",
            "random",
        ] {
            let mut spec = ExperimentSpec::from_json(&wordcount_json()).unwrap();
            spec.scheme = scheme.into();
            spec.slots = 2;
            assert!(spec.run().is_ok(), "{scheme} failed");
        }
    }

    #[test]
    fn rejects_unknown_scheme_and_kind() {
        let mut spec = ExperimentSpec::from_json(&wordcount_json()).unwrap();
        spec.scheme = "magic".into();
        assert!(matches!(spec.run(), Err(SpecError::Invalid(_))));

        let mut spec2 = ExperimentSpec::from_json(&wordcount_json()).unwrap();
        spec2.components[0].kind = "teapot".into();
        assert!(matches!(spec2.run(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn rejects_operator_without_capacity() {
        let mut spec = ExperimentSpec::from_json(&wordcount_json()).unwrap();
        spec.components[1].capacity = None;
        assert!(matches!(spec.application(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn rejects_capacity_on_source() {
        let mut spec = ExperimentSpec::from_json(&wordcount_json()).unwrap();
        spec.components[0].capacity = Some(CapacityModel::Linear { per_task: 1.0 });
        assert!(matches!(spec.application(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn rejects_selectivity_and_h_together() {
        let mut spec = ExperimentSpec::from_json(&wordcount_json()).unwrap();
        spec.edges[1].h = Some(ThroughputFn::Linear { weights: vec![1.0] });
        assert!(matches!(spec.application(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn rejects_zero_slots_and_bad_json() {
        let mut spec = ExperimentSpec::from_json(&wordcount_json()).unwrap();
        spec.slots = 0;
        assert!(matches!(spec.run(), Err(SpecError::Invalid(_))));
        assert!(matches!(
            ExperimentSpec::from_json("{not json"),
            Err(SpecError::Parse(_))
        ));
    }

    #[test]
    fn budget_is_respected_through_the_spec_path() {
        let mut spec = ExperimentSpec::from_json(&wordcount_json()).unwrap();
        spec.budget_pods = Some(6);
        spec.slots = 8;
        let trace = spec.run().unwrap();
        assert!(trace.deployments.iter().all(|d| d.total_pods() <= 6));
    }

    #[test]
    fn arrival_variants_parse() {
        for arrival in [
            r#"{"square_wave": {"high": [1.0], "low": [0.5], "half_period_slots": 3}}"#,
            r#"{"step_at": {"at": 2, "before": [1.0], "after": [2.0]}}"#,
            r#"{"sine": {"mean": [1.0], "amplitude": 0.3, "period_slots": 8}}"#,
        ] {
            let a: ArrivalSpec = serde_json::from_str(arrival).unwrap();
            let mut built = a.build();
            assert_eq!(built.rates(0).len(), 1);
        }
    }

    #[test]
    fn spec_roundtrips_through_serde() {
        let spec = ExperimentSpec::from_json(&wordcount_json()).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back.slots, spec.slots);
        assert_eq!(back.components.len(), 4);
    }
}
