//! Chaos-layer properties at the system level: determinism of faulted
//! runs, sanitizer guarantees on the recorded trace, and graceful
//! degradation of the harness under injected reconfiguration failures.

use dragster::core::{Dragster, DragsterConfig};
use dragster::sim::faults::{FaultKind, FaultPlan, FaultRates, ScriptedFault};
use dragster::sim::fluid::SimConfig;
use dragster::sim::{
    run_experiment, ClusterConfig, ConstantArrival, Deployment, FluidSim, NoiseConfig, Trace,
};
use dragster::workloads::word_count;

fn stochastic_plan() -> FaultPlan {
    FaultPlan {
        scripted: vec![],
        rates: FaultRates {
            pod_crash_prob: 0.08,
            straggler_prob: 0.1,
            reconfig_fail_prob: 0.15,
            metric_dropout_prob: 0.15,
            metric_stale_prob: 0.1,
            metric_corrupt_prob: 0.1,
            metric_corrupt_factor: 30.0,
            ..Default::default()
        },
    }
}

fn run_faulted(plan: Option<FaultPlan>, seed: u64, slots: usize) -> Trace {
    let w = word_count().unwrap();
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        seed,
        Deployment::uniform(2, 1),
    )
    .unwrap();
    if let Some(p) = plan {
        sim = sim.with_faults(p);
    }
    let mut scaler = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let mut arr = ConstantArrival(w.high_rate.clone());
    run_experiment(&mut sim, &mut scaler, &mut arr, slots).unwrap()
}

#[test]
fn identical_seed_and_plan_give_bit_identical_traces() {
    for seed in [1, 7, 23, 1234] {
        let a = run_faulted(Some(stochastic_plan()), seed, 12);
        let b = run_faulted(Some(stochastic_plan()), seed, 12);
        assert_eq!(a, b, "seed {seed}: faulted runs must be reproducible");
        assert!(
            !a.fault_events.is_empty(),
            "seed {seed}: the stochastic plan should actually fire"
        );
    }
}

#[test]
fn different_seeds_give_different_fault_realizations() {
    let a = run_faulted(Some(stochastic_plan()), 1, 12);
    let b = run_faulted(Some(stochastic_plan()), 2, 12);
    assert_ne!(a, b);
}

#[test]
fn faulted_traces_never_record_nan_or_negative_metrics() {
    // The engine injects NaN (dropouts, corrupt-with-factor-0 samples),
    // but the harness stores *sanitized* snapshots: whatever the chaos
    // layer does, no recorded metric may be NaN or negative.
    for seed in [3, 9, 41] {
        let trace = run_faulted(Some(stochastic_plan()), seed, 15);
        for s in &trace.slots {
            assert!(s.throughput.is_finite() && s.throughput >= 0.0);
            for o in &s.operators {
                for (label, v) in [
                    ("cpu_util", o.cpu_util),
                    ("capacity_sample", o.capacity_sample),
                    ("input_rate", o.input_rate),
                    ("output_rate", o.output_rate),
                    ("offered_load", o.offered_load),
                    ("buffer_tuples", o.buffer_tuples),
                    ("latency", o.latency_estimate_secs),
                ] {
                    assert!(
                        v.is_finite() && v >= 0.0,
                        "seed {seed} slot {} op {}: {label} = {v}",
                        s.t,
                        o.name
                    );
                }
            }
        }
    }
}

#[test]
fn zero_probability_plan_is_identical_to_no_plan() {
    // A plan whose every rate is zero must not perturb the run at all:
    // the fault stream is separate from the engine noise stream, so the
    // trace is bit-identical to a run with no plan attached.
    let with_inert = run_faulted(Some(FaultPlan::none()), 5, 10);
    let without = run_faulted(None, 5, 10);
    assert_eq!(with_inert, without);
    assert!(with_inert.fault_events.is_empty());
    assert_eq!(with_inert.reconfig_failures, 0);
    assert_eq!(with_inert.held_slots, 0);
}

#[test]
fn scripted_reconfig_failures_degrade_gracefully() {
    let plan = FaultPlan::none().with(ScriptedFault {
        slot: 2,
        kind: FaultKind::ReconfigFail,
        operator: None,
        severity: 1.0,
        duration_slots: 3,
    });
    let trace = run_faulted(Some(plan), 7, 12);
    // the run completed all slots and recorded at least one absorbed fault
    assert_eq!(trace.len(), 12);
    assert!(
        trace.reconfig_failures >= 1,
        "early slots reconfigure every slot, so the window must hit"
    );
    assert!(trace
        .fault_events
        .iter()
        .any(|e| e.kind == FaultKind::ReconfigFail));
}

#[test]
fn scripted_crash_dips_then_recovers() {
    let fault_slot = 8;
    let plan = FaultPlan::none().with(ScriptedFault {
        slot: fault_slot,
        kind: FaultKind::PodCrash,
        operator: Some(0),
        severity: 1.0,
        duration_slots: 3,
    });
    let trace = run_faulted(Some(plan), 11, 20);
    let pre = trace.mean_throughput(4..fault_slot);
    let dip = trace.slots[fault_slot].throughput;
    let tail = trace.mean_throughput(16..20);
    assert!(
        dip < 0.6 * pre,
        "crash slot should dip: {dip} vs pre-fault {pre}"
    );
    assert!(
        tail > 0.8 * pre,
        "throughput should recover: tail {tail} vs pre-fault {pre}"
    );
    assert!(trace
        .fault_events
        .iter()
        .any(|e| e.kind == FaultKind::PodCrash && e.slot == fault_slot));
}
