//! End-to-end integration: every workload × every scheme runs through the
//! full observe→decide→deploy loop; Dragster converges to within 10 % of
//! the clairvoyant optimum, respects budgets, and runs are deterministic
//! under a fixed seed.

use dragster::baselines::{Dhalion, DhalionConfig, Ds2, Ds2Config};
use dragster::core::{greedy_optimal, Dragster, DragsterConfig};
use dragster::sim::fluid::SimConfig;
use dragster::sim::{
    run_experiment, Autoscaler, ClusterConfig, ConstantArrival, Deployment, FluidSim, NoiseConfig,
    Trace,
};
use dragster::workloads::{figure5_suite, word_count, yahoo_benchmark, Workload};

fn run_workload(
    w: &Workload,
    rate: &[f64],
    scaler: &mut dyn Autoscaler,
    slots: usize,
    budget: Option<usize>,
    seed: u64,
) -> Trace {
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig {
            budget_pods: budget,
            ..Default::default()
        },
        SimConfig::default(),
        NoiseConfig::default(),
        seed,
        Deployment::uniform(w.n_operators(), 1),
    )
    .unwrap();
    let mut arrival = ConstantArrival(rate.to_vec());
    run_experiment(&mut sim, scaler, &mut arrival, slots).unwrap()
}

#[test]
fn dragster_converges_on_every_workload() {
    for (w, rate, label) in figure5_suite().unwrap() {
        let mut scaler = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
        let trace = run_workload(&w, &rate, &mut scaler, 30, None, 42);
        let (_, opt) = greedy_optimal(&w.app, &rate, 10, None).unwrap();
        let tail = trace.ideal_throughput[25..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            tail >= 0.88 * opt,
            "{label}: tail ideal {tail} below 88 % of optimal {opt}"
        );
    }
}

#[test]
fn every_scheme_completes_on_yahoo() {
    let w = yahoo_benchmark().unwrap();
    let mut schemes: Vec<Box<dyn Autoscaler>> = vec![
        Box::new(Dhalion::new(DhalionConfig::default())),
        Box::new(Ds2::new(Ds2Config::default())),
        Box::new(Dragster::new(
            w.app.topology.clone(),
            DragsterConfig::saddle_point(),
        )),
        Box::new(Dragster::new(
            w.app.topology.clone(),
            DragsterConfig::gradient_descent(),
        )),
    ];
    for scaler in schemes.iter_mut() {
        let trace = run_workload(&w, &w.high_rate, scaler.as_mut(), 12, None, 7);
        assert_eq!(trace.len(), 12, "{}", scaler.name());
        assert!(trace.total_processed() > 0.0);
        for d in &trace.deployments {
            assert!(d.tasks.iter().all(|&t| (1..=10).contains(&t)));
        }
    }
}

#[test]
fn budget_never_violated_by_any_scheme() {
    let w = word_count().unwrap();
    let budget = Some(9);
    let mut schemes: Vec<Box<dyn Autoscaler>> = vec![
        Box::new(Dhalion::new(DhalionConfig {
            budget_pods: budget,
            ..Default::default()
        })),
        Box::new(Ds2::new(Ds2Config {
            budget_pods: budget,
            ..Default::default()
        })),
        Box::new(Dragster::new(
            w.app.topology.clone(),
            DragsterConfig {
                budget_pods: budget,
                ..DragsterConfig::saddle_point()
            },
        )),
    ];
    for scaler in schemes.iter_mut() {
        let trace = run_workload(&w, &w.high_rate, scaler.as_mut(), 20, budget, 3);
        for (t, d) in trace.deployments.iter().enumerate() {
            assert!(
                d.total_pods() <= 9,
                "{} violated budget at slot {t}: {d}",
                scaler.name()
            );
        }
    }
}

#[test]
fn runs_are_deterministic_under_fixed_seed() {
    let w = word_count().unwrap();
    let mk = || Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let mut a = mk();
    let mut b = mk();
    let ta = run_workload(&w, &w.high_rate, &mut a, 10, None, 99);
    let tb = run_workload(&w, &w.high_rate, &mut b, 10, None, 99);
    assert_eq!(ta.deployments, tb.deployments);
    let tha: Vec<f64> = ta.slots.iter().map(|s| s.throughput).collect();
    let thb: Vec<f64> = tb.slots.iter().map(|s| s.throughput).collect();
    assert_eq!(tha, thb);
}

#[test]
fn different_seeds_vary_noise_not_structure() {
    let w = word_count().unwrap();
    let mut a = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let mut b = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let ta = run_workload(&w, &w.high_rate, &mut a, 20, None, 1);
    let tb = run_workload(&w, &w.high_rate, &mut b, 20, None, 2);
    // both converge to near-optimal even though noise differs
    let (_, opt) = greedy_optimal(&w.app, &w.high_rate, 10, None).unwrap();
    for trace in [&ta, &tb] {
        let tail = trace.ideal_throughput[15..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(tail >= 0.88 * opt);
    }
}

#[test]
fn dragster_beats_dhalion_on_convergence_wordcount() {
    // the core comparative claim, as a regression test with margin
    let w = word_count().unwrap();
    let (_, opt) = greedy_optimal(&w.app, &w.high_rate, 10, None).unwrap();
    let opt_series = vec![opt; 30];

    let mut dh = Dhalion::new(DhalionConfig::default());
    let t_dh = run_workload(&w, &w.high_rate, &mut dh, 30, None, 42);
    let mut dr = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let t_dr = run_workload(&w, &w.high_rate, &mut dr, 30, None, 42);

    let c_dh = t_dh.convergence_slot(&opt_series, 0.1, 0..30);
    let c_dr = t_dr.convergence_slot(&opt_series, 0.1, 0..30);
    let (c_dh, c_dr) = (
        c_dh.expect("Dhalion converges"),
        c_dr.expect("Dragster converges"),
    );
    assert!(
        c_dr < c_dh,
        "Dragster ({c_dr}) should converge before Dhalion ({c_dh})"
    );
}

#[test]
fn ds2_overshoots_on_saturating_capacity() {
    // DS2's linear model extrapolates a saturating operator incorrectly —
    // the motivating weakness Dragster's GP fixes. DS2 must still complete
    // and not crash; Dragster should reach a no-worse configuration.
    let w = dragster::workloads::async_io().unwrap();
    let mut ds2 = Ds2::new(Ds2Config::default());
    let t_ds2 = run_workload(&w, &w.high_rate, &mut ds2, 20, None, 5);
    let mut dr = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let t_dr = run_workload(&w, &w.high_rate, &mut dr, 20, None, 5);
    let tail = |t: &Trace| {
        t.ideal_throughput[15..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    };
    assert!(tail(&t_dr) >= tail(&t_ds2) * 0.99);
}
