//! Cross-validation of the two simulation engines: for the same
//! application, deployment and constant offered load, the fluid model's
//! steady-state throughput must agree with the discrete-event engine, and
//! both must agree with the analytic DAG propagation.

use dragster::dag::throughput;
use dragster::sim::fluid::SimConfig;
use dragster::sim::{
    Application, CapacityModel, ClusterConfig, Deployment, DesSim, FluidSim, NoiseConfig,
};
use dragster::workloads::{word_count, yahoo_benchmark};

fn fluid_steady_state(app: &Application, d: &Deployment, rate: &[f64]) -> f64 {
    let mut sim = FluidSim::new(
        app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::none(),
        1,
        d.clone(),
    )
    .unwrap();
    // warm one slot (fills pipelines/buffers), measure the second
    let _ = sim.run_slot(rate);
    sim.run_slot(rate).throughput
}

fn des_steady_state(app: &Application, d: &Deployment, rate: &[f64]) -> f64 {
    DesSim::new(app.clone(), d.clone(), 1.0)
        .unwrap()
        .run(rate, 900.0, 300.0)
        .throughput
}

#[test]
fn engines_agree_on_underloaded_wordcount() {
    let w = word_count().unwrap();
    let d = Deployment::uniform(2, 8);
    let rate = vec![8.0e4];
    let analytic = w.app.ideal_throughput(&rate, &d.tasks).unwrap();
    let fluid = fluid_steady_state(&w.app, &d, &rate);
    let des = des_steady_state(&w.app, &d, &rate);
    assert!(
        (fluid - analytic).abs() / analytic < 0.02,
        "fluid {fluid} vs {analytic}"
    );
    assert!(
        (des - analytic).abs() / analytic < 0.06,
        "des {des} vs {analytic}"
    );
}

#[test]
fn engines_agree_on_overloaded_wordcount() {
    let w = word_count().unwrap();
    let d = Deployment::uniform(2, 2);
    let rate = vec![2.0e5]; // far beyond capacity
    let analytic = w.app.ideal_throughput(&rate, &d.tasks).unwrap();
    let fluid = fluid_steady_state(&w.app, &d, &rate);
    let des = des_steady_state(&w.app, &d, &rate);
    assert!(
        (fluid - analytic).abs() / analytic < 0.03,
        "fluid {fluid} vs {analytic}"
    );
    assert!(
        (des - analytic).abs() / analytic < 0.08,
        "des {des} vs {analytic}"
    );
}

#[test]
fn engines_agree_on_yahoo_pipeline() {
    let w = yahoo_benchmark().unwrap();
    let d = Deployment {
        tasks: vec![8, 2, 2, 4, 3, 2],
    };
    let rate = w.high_rate.clone();
    let analytic = w.app.ideal_throughput(&rate, &d.tasks).unwrap();
    let fluid = fluid_steady_state(&w.app, &d, &rate);
    assert!(
        (fluid - analytic).abs() / analytic < 0.05,
        "fluid {fluid} vs analytic {analytic}"
    );
}

#[test]
fn des_backlog_location_matches_fluid_bottleneck() {
    // both engines must blame the same operator under overload
    let w = word_count().unwrap();
    let d = Deployment { tasks: vec![8, 1] }; // shuffle starved
    let rate = vec![1.5e5];
    let des = DesSim::new(w.app.clone(), d.clone(), 1.0)
        .unwrap()
        .run(&rate, 600.0, 100.0);
    assert!(
        des.backlog[1] > des.backlog[0] * 5.0,
        "DES backlog should pile at shuffle: {:?}",
        des.backlog
    );
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::none(),
        1,
        d,
    )
    .unwrap();
    let _ = sim.run_slot(&rate);
    let buffers = sim.buffers();
    assert!(
        buffers[1] > buffers[0] * 5.0,
        "fluid backlog should pile at shuffle: {buffers:?}"
    );
}

#[test]
fn engines_agree_under_partial_capacity_fault() {
    // The same seeded fault plan realized through both engines: a scripted
    // cluster-wide straggler costs every operator 80 % of its capacity
    // during slot 0 (stragglers recover on a linear ramp, so only the
    // first slot has the full multiplier — both measurements stay inside
    // it). Full crashes (multiplier 0) are excluded from the agreement
    // contract: the fluid model keeps queue mass trickling while the DES
    // pipeline stalls outright, so tolerances only hold for partial loss.
    use dragster::sim::faults::{FaultKind, FaultPlan, ScriptedFault};
    let w = word_count().unwrap();
    let d = Deployment::uniform(2, 8);
    let rate = vec![8.0e4];
    let plan = FaultPlan::none().with(ScriptedFault {
        slot: 0,
        kind: FaultKind::Straggler,
        operator: None,
        severity: 0.8,
        duration_slots: 4,
    });
    let seed = 1;
    let slot_secs = SimConfig::default().slot_secs;

    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::none(),
        seed,
        d.clone(),
    )
    .unwrap()
    .with_faults(plan.clone());
    let fluid = sim.run_slot(&rate).throughput;

    // Measure the DES over the tail of the same slot-0 window (the first
    // 100 s are pipeline fill in both engines, already inside slot 0).
    let des = DesSim::new(w.app.clone(), d.clone(), 1.0)
        .unwrap()
        .with_disturbances(plan, None, seed, slot_secs)
        .run(&rate, slot_secs, 100.0)
        .throughput;

    let clean = fluid_steady_state(&w.app, &d, &rate);
    assert!(
        fluid < 0.6 * clean,
        "straggler should dent fluid throughput: {fluid} vs clean {clean}"
    );
    assert!(
        (fluid - des).abs() / fluid < 0.1,
        "faulted engines disagree: fluid {fluid} vs des {des}"
    );
}

#[test]
fn selectivity_chain_is_exact_in_both_engines() {
    // filter with 25 % selectivity, generous capacity
    let topo = dragster::dag::TopologyBuilder::new()
        .source("s")
        .operator("filter")
        .sink("k")
        .edge("s", "filter")
        .edge_with(
            "filter",
            "k",
            dragster::dag::ThroughputFn::Linear {
                weights: vec![0.25],
            },
            1.0,
        )
        .build()
        .unwrap();
    let app = Application::new(topo, vec![CapacityModel::Linear { per_task: 1.0e5 }]).unwrap();
    let d = Deployment::uniform(1, 2);
    let rate = vec![1.0e5];
    let analytic = throughput(&app.topology, &rate, &app.true_capacities(&d.tasks)).unwrap();
    assert!((analytic - 2.5e4).abs() < 1.0);
    let fluid = fluid_steady_state(&app, &d, &rate);
    let des = des_steady_state(&app, &d, &rate);
    assert!((fluid - 2.5e4).abs() / 2.5e4 < 0.02, "{fluid}");
    assert!((des - 2.5e4).abs() / 2.5e4 < 0.06, "{des}");
}
