//! Theorem-2 integration: Dragster in learned-h mode on workloads whose
//! selectivities differ sharply from the all-pass-through initial guess.

use dragster::core::{greedy_optimal, Dragster, DragsterConfig};
use dragster::sim::fluid::SimConfig;
use dragster::sim::{
    run_experiment, ClusterConfig, ConstantArrival, Deployment, FluidSim, NoiseConfig,
};
use dragster::workloads::{fraud_detect, yahoo_benchmark};

fn run_learned(
    w: &dragster::workloads::Workload,
    slots: usize,
    seed: u64,
) -> (dragster::sim::Trace, Dragster) {
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        seed,
        Deployment::uniform(w.n_operators(), 1),
    )
    .unwrap();
    let cfg = DragsterConfig {
        learn_h: true,
        ..DragsterConfig::saddle_point()
    };
    let mut scaler = Dragster::new(w.app.topology.clone(), cfg);
    let mut arrival = ConstantArrival(w.high_rate.clone());
    let trace = run_experiment(&mut sim, &mut scaler, &mut arrival, slots).unwrap();
    (trace, scaler)
}

#[test]
fn learned_h_converges_on_yahoo() {
    let w = yahoo_benchmark().unwrap();
    let (trace, scaler) = run_learned(&w, 30, 42);
    let (_, opt) = greedy_optimal(&w.app, &w.high_rate, 10, None).unwrap();
    let tail = trace.ideal_throughput[25..]
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert!(
        tail >= 0.88 * opt,
        "learned-h failed to converge: {tail} vs {opt}"
    );
    // and the estimator actually learned the selectivities
    let err = scaler
        .estimator()
        .expect("learn_h mode")
        .max_relative_error(&w.app.topology);
    assert!(err < 0.10, "selectivity error {err}");
}

#[test]
fn learned_h_handles_sub_unit_selectivity_chain() {
    // FraudDetect's final filter keeps only 2 % of tuples: the initial
    // all-pass-through guess overestimates the sink rate by 50× — the
    // estimator must correct it.
    let w = fraud_detect().unwrap();
    let (trace, scaler) = run_learned(&w, 30, 7);
    let (_, opt) = greedy_optimal(&w.app, &w.high_rate, 10, None).unwrap();
    let tail = trace.ideal_throughput[25..]
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert!(tail >= 0.85 * opt, "{tail} vs {opt}");
    let est = scaler.estimator().expect("learn_h mode");
    // the 0.02-selectivity AlertFilter weight must be learned closely
    let alert_idx = (0..3)
        .find(|&i| w.app.topology.operator_name(i) == "AlertFilter")
        .expect("present");
    let learned = est.weights()[alert_idx][0];
    assert!(
        (learned - 0.02).abs() < 0.01,
        "AlertFilter selectivity learned as {learned}"
    );
}

#[test]
fn exact_and_learned_modes_converge_to_same_configuration() {
    let w = yahoo_benchmark().unwrap();
    let (t_learned, _) = run_learned(&w, 30, 3);
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        3,
        Deployment::uniform(6, 1),
    )
    .unwrap();
    let mut scaler = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let mut arrival = ConstantArrival(w.high_rate.clone());
    let t_exact = run_experiment(&mut sim, &mut scaler, &mut arrival, 30).unwrap();
    // both end within a pod or two of each other per operator
    let a = &t_exact.deployments[29].tasks;
    let b = &t_learned.deployments[29].tasks;
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            x.abs_diff(*y) <= 2,
            "operator {i}: exact {x} vs learned {y} tasks"
        );
    }
}
