//! Property test: the fluid and discrete-event engines agree on
//! steady-state throughput for random linear chains across load regimes,
//! and both match the analytic DAG propagation.

use dragster::dag::{ThroughputFn, TopologyBuilder};
use dragster::sim::fluid::SimConfig;
use dragster::sim::{
    Application, CapacityModel, ClusterConfig, Deployment, DesSim, FluidSim, NoiseConfig,
};
use proptest::prelude::*;

fn chain_app(k: usize, per_task: &[f64], sels: &[f64]) -> Application {
    let mut b = TopologyBuilder::new().source("src");
    for i in 0..k {
        b = b.operator(&format!("op{i}"));
    }
    b = b.sink("out").edge("src", "op0");
    #[allow(clippy::needless_range_loop)]
    for i in 1..k {
        b = b.edge_with(
            &format!("op{}", i - 1),
            &format!("op{i}"),
            ThroughputFn::Linear {
                weights: vec![sels[i]],
            },
            1.0,
        );
    }
    let topo = b.edge(&format!("op{}", k - 1), "out").build().unwrap();
    let models = (0..k)
        .map(|i| CapacityModel::Linear {
            per_task: per_task[i],
        })
        .collect();
    Application::new(topo, models).unwrap()
}

proptest! {
    // DES runs are slow-ish; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fluid_and_des_agree_on_random_chains(
        k in 1usize..4,
        per_task in proptest::collection::vec(50.0..400.0f64, 3),
        sels in proptest::collection::vec(0.3..1.0f64, 3),
        tasks in proptest::collection::vec(1usize..6, 3),
        rate in 50.0..1500.0f64,
    ) {
        let app = chain_app(k, &per_task, &sels);
        let d = Deployment { tasks: tasks[..k].to_vec() };
        let analytic = app.ideal_throughput(&[rate], &d.tasks).unwrap();
        prop_assume!(analytic > 10.0); // skip near-degenerate flows

        // fluid: warm one slot, measure the second
        let mut sim = FluidSim::new(
            app.clone(),
            ClusterConfig::default(),
            SimConfig::default(),
            NoiseConfig::none(),
            1,
            d.clone(),
        ).unwrap();
        let _ = sim.run_slot(&[rate]);
        let fluid = sim.run_slot(&[rate]).throughput;
        prop_assert!(
            (fluid - analytic).abs() / analytic < 0.03,
            "fluid {fluid} vs analytic {analytic}"
        );

        // DES with 1-second batches over 600 s, measured after 200 s warmup
        let des = DesSim::new(app, d, 1.0).unwrap().run(&[rate], 600.0, 200.0).throughput;
        prop_assert!(
            (des - analytic).abs() / analytic < 0.10,
            "des {des} vs analytic {analytic} (k={k}, rate={rate})"
        );
    }
}
