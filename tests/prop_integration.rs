//! Workspace-level property tests: random chains + random loads through
//! the full stack. Invariants: deployments always valid and within budget,
//! tuple conservation in the simulator, the oracle dominates every scheme,
//! and observed capacity samples stay near ground truth.

use dragster::core::{greedy_optimal, Dragster, DragsterConfig};
use dragster::dag::{ThroughputFn, Topology, TopologyBuilder};
use dragster::sim::fluid::SimConfig;
use dragster::sim::{
    run_experiment, Application, CapacityModel, ClusterConfig, ConstantArrival, Deployment,
    FluidSim, NoiseConfig,
};
use proptest::prelude::*;

fn arb_chain_app() -> impl Strategy<Value = (Application, f64)> {
    (
        2usize..4,
        proptest::collection::vec(1.0e4..6.0e4f64, 3),
        proptest::collection::vec(0.4..1.0f64, 3),
        1.0e4..2.0e5f64,
    )
        .prop_map(|(k, per_task, sels, rate)| {
            let mut b = TopologyBuilder::new().source("src");
            for i in 0..k {
                b = b.operator(&format!("op{i}"));
            }
            b = b.sink("out").edge("src", "op0");
            #[allow(clippy::needless_range_loop)]
            for i in 1..k {
                b = b.edge_with(
                    &format!("op{}", i - 1),
                    &format!("op{i}"),
                    ThroughputFn::Linear {
                        weights: vec![sels[i]],
                    },
                    1.0,
                );
            }
            let topo: Topology = b.edge(&format!("op{}", k - 1), "out").build().unwrap();
            let models = (0..k)
                .map(|i| CapacityModel::Contended {
                    per_task: per_task[i],
                    contention: 0.05,
                })
                .collect();
            (Application::new(topo, models).unwrap(), rate)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn controller_always_produces_valid_budgeted_deployments(
        (app, rate) in arb_chain_app(),
        budget in 6usize..20,
        seed in 0u64..100,
    ) {
        let m = app.n_operators();
        let budget = budget.max(m);
        let mut sim = FluidSim::new(
            app.clone(),
            ClusterConfig { budget_pods: Some(budget), ..Default::default() },
            SimConfig::default(),
            NoiseConfig::default(),
            seed,
            Deployment::uniform(m, 1),
        ).unwrap();
        let cfg = DragsterConfig { budget_pods: Some(budget), ..DragsterConfig::saddle_point() };
        let mut scaler = Dragster::new(app.topology.clone(), cfg);
        let mut arrival = ConstantArrival(vec![rate]);
        let trace = run_experiment(&mut sim, &mut scaler, &mut arrival, 8).unwrap();
        for d in &trace.deployments {
            prop_assert!(d.total_pods() <= budget);
            prop_assert!(d.tasks.iter().all(|&t| (1..=10).contains(&t)));
        }
    }

    #[test]
    fn simulator_conserves_tuples_on_identity_chains(
        per_task in 1.0e4..5.0e4f64,
        rate in 1.0e4..1.5e5f64,
        tasks in 1usize..10,
        slots in 1usize..6,
    ) {
        // identity chain (selectivity 1): in = processed + buffered + dropped
        let topo = TopologyBuilder::new()
            .source("s")
            .operator("a")
            .operator("b")
            .sink("k")
            .edge("s", "a")
            .edge("a", "b")
            .edge("b", "k")
            .build()
            .unwrap();
        let app = Application::new(
            topo,
            vec![
                CapacityModel::Linear { per_task },
                CapacityModel::Linear { per_task },
            ],
        )
        .unwrap();
        let mut sim = FluidSim::new(
            app,
            ClusterConfig::default(),
            SimConfig::default(),
            NoiseConfig::none(),
            1,
            Deployment::uniform(2, tasks),
        ).unwrap();
        for _ in 0..slots {
            let _ = sim.run_slot(&[rate]);
        }
        let offered = rate * 600.0 * slots as f64;
        let accounted =
            sim.total_processed() + sim.buffers().iter().sum::<f64>() + sim.total_dropped();
        prop_assert!(
            (accounted - offered).abs() / offered < 1e-6,
            "conservation violated: offered {offered} accounted {accounted}"
        );
    }

    #[test]
    fn oracle_dominates_achieved_throughput(
        (app, rate) in arb_chain_app(),
        seed in 0u64..50,
    ) {
        let m = app.n_operators();
        let mut sim = FluidSim::new(
            app.clone(),
            ClusterConfig::default(),
            SimConfig::default(),
            NoiseConfig::none(),
            seed,
            Deployment::uniform(m, 1),
        ).unwrap();
        let mut scaler = Dragster::new(app.topology.clone(), DragsterConfig::saddle_point());
        let mut arrival = ConstantArrival(vec![rate]);
        let trace = run_experiment(&mut sim, &mut scaler, &mut arrival, 6).unwrap();
        let (_, opt) = greedy_optimal(&app, &[rate], 10, None).unwrap();
        for &f in &trace.ideal_throughput {
            prop_assert!(f <= opt + 1e-6, "deployed config beat the oracle: {f} > {opt}");
        }
    }

    #[test]
    fn capacity_samples_track_ground_truth(
        per_task in 1.0e4..5.0e4f64,
        tasks in 2usize..10,
        seed in 0u64..50,
    ) {
        // Under moderate load (operator busy but not saturated), the Eq.-8
        // sample must land near the true capacity even with default noise.
        let topo = TopologyBuilder::new()
            .source("s")
            .operator("a")
            .sink("k")
            .edge("s", "a")
            .edge("a", "k")
            .build()
            .unwrap();
        let truth = CapacityModel::Linear { per_task }.capacity(tasks);
        let app = Application::new(topo, vec![CapacityModel::Linear { per_task }]).unwrap();
        let mut sim = FluidSim::new(
            app,
            ClusterConfig::default(),
            SimConfig::default(),
            NoiseConfig::default(),
            seed,
            Deployment::uniform(1, tasks),
        ).unwrap();
        let rate = truth * 0.6;
        let mut mean = 0.0;
        let n = 10;
        for _ in 0..n {
            mean += sim.run_slot(&[rate]).operators[0].capacity_sample;
        }
        mean /= n as f64;
        prop_assert!(
            (mean - truth).abs() / truth < 0.12,
            "capacity sample mean {mean} far from truth {truth}"
        );
    }

    #[test]
    fn exhaustive_and_greedy_oracle_agree_on_random_chains(
        (app, rate) in arb_chain_app(),
        budget in proptest::option::of(5usize..25),
    ) {
        let budget = budget.map(|b| b.max(app.n_operators()));
        let (_, fg) = greedy_optimal(&app, &[rate], 6, budget).unwrap();
        let (_, fe) = dragster::core::exhaustive_optimal(&app, &[rate], 6, budget).unwrap();
        prop_assert!(
            (fg - fe).abs() <= fe * 1e-6 + 1e-9,
            "greedy {fg} != exhaustive {fe}"
        );
    }
}
