//! Crash-safe controller runtime at the system level (DESIGN §10): the
//! replay-identity guarantee (crash anywhere, restore from checkpoint,
//! replay the journal ⇒ bit-identical remaining trace), the degraded
//! fallback when the checkpoint does not validate, composition of
//! controller-crash faults with data-plane chaos, and journal corruption
//! detection.

use dragster::sim::faults::{FaultKind, FaultPlan, FaultRates, ScriptedFault};
use dragster::sim::fluid::SimConfig;
use dragster::sim::journal::{DecisionJournal, JournalError, JournalRecord, ReconfigOutcome};
use dragster::sim::{
    run_experiment_recoverable, run_experiment_with, ClusterConfig, ConstantArrival, DegradeReason,
    Deployment, ExperimentOptions, FluidSim, NoiseConfig, RecoveryAction, RecoveryOptions,
    SlotMetrics, Trace,
};
use dragster::workloads::word_count;

const SEED: u64 = 42;
const SLOTS: usize = 12;

fn make_sim(plan: FaultPlan, seed: u64) -> FluidSim {
    let w = word_count().unwrap();
    FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        seed,
        Deployment::uniform(w.app.n_operators(), 1),
    )
    .unwrap()
    .with_faults(plan)
}

fn run_recoverable(plan: FaultPlan, seed: u64, slots: usize, rec: RecoveryOptions) -> Trace {
    let w = word_count().unwrap();
    let mut sim = make_sim(plan, seed);
    let mut scaler = dragster::core::Dragster::new(
        w.app.topology.clone(),
        dragster::core::DragsterConfig::saddle_point(),
    );
    let mut arrival = ConstantArrival(w.high_rate.clone());
    run_experiment_recoverable(
        &mut sim,
        &mut scaler,
        &mut arrival,
        slots,
        ExperimentOptions::default(),
        rec,
    )
    .unwrap()
}

fn crash_at(slot: usize) -> FaultPlan {
    FaultPlan::none().with(ScriptedFault {
        slot,
        kind: FaultKind::ControllerCrash,
        operator: None,
        severity: 1.0,
        duration_slots: 1,
    })
}

/// The data-plane face of two traces must match bit-for-bit; only the
/// recovery bookkeeping (crash counters, recovery events, controller
/// fault events) is allowed to differ.
fn assert_data_plane_identical(a: &Trace, b: &Trace, ctx: &str) {
    assert_eq!(a.slots, b.slots, "{ctx}: slot metrics diverged");
    assert_eq!(a.deployments, b.deployments, "{ctx}: deployments diverged");
    assert_eq!(
        a.ideal_throughput, b.ideal_throughput,
        "{ctx}: ideal throughput diverged"
    );
    assert_eq!(
        a.reconfig_failures, b.reconfig_failures,
        "{ctx}: reconfig failures diverged"
    );
    assert_eq!(a.held_slots, b.held_slots, "{ctx}: held slots diverged");
}

#[test]
fn inert_plan_recoverable_run_matches_run_experiment_with_bit_identically() {
    let w = word_count().unwrap();
    let baseline = {
        let mut sim = make_sim(FaultPlan::none(), SEED);
        let mut scaler = dragster::core::Dragster::new(
            w.app.topology.clone(),
            dragster::core::DragsterConfig::saddle_point(),
        );
        let mut arrival = ConstantArrival(w.high_rate.clone());
        run_experiment_with(
            &mut sim,
            &mut scaler,
            &mut arrival,
            SLOTS,
            ExperimentOptions::default(),
        )
        .unwrap()
    };
    let recoverable = run_recoverable(FaultPlan::none(), SEED, SLOTS, RecoveryOptions::default());
    assert_eq!(
        baseline, recoverable,
        "zero-fault recoverable trace must equal the plain harness trace"
    );
    assert_eq!(recoverable.controller_crashes, 0);
    assert!(recoverable.recovery_events.is_empty());
    assert_eq!(recoverable.fallback_slots, 0);
}

#[test]
fn crash_restore_replay_is_bit_identical_at_every_probe_slot() {
    let clean = run_recoverable(FaultPlan::none(), SEED, SLOTS, RecoveryOptions::default());
    for k in [1, SLOTS / 2, SLOTS - 1] {
        let crashed = run_recoverable(crash_at(k), SEED, SLOTS, RecoveryOptions::default());
        assert_eq!(crashed.controller_crashes, 1);
        assert!(
            crashed
                .recovery_events
                .iter()
                .any(|e| e.slot == k && matches!(e.action, RecoveryAction::Restored { .. })),
            "crash at slot {k} should restore, got {:?}",
            crashed.recovery_events
        );
        assert_eq!(crashed.fallback_slots, 0, "restore must not enter fallback");
        assert_data_plane_identical(&clean, &crashed, &format!("crash at slot {k}"));
    }
}

#[test]
fn sparse_checkpoints_replay_journal_records_to_the_crash_point() {
    let rec = RecoveryOptions {
        checkpoint_every: 5,
        ..Default::default()
    };
    let clean = run_recoverable(FaultPlan::none(), SEED, SLOTS, rec);
    // Crash at slot 9: newest checkpoint is slot 5, so slots 6–8 must be
    // rebuilt from the journal.
    let crashed = run_recoverable(crash_at(9), SEED, SLOTS, rec);
    assert!(
        crashed.recovery_events.iter().any(|e| e.slot == 9
            && e.action
                == RecoveryAction::Restored {
                    checkpoint_slot: 5,
                    replayed_slots: 3,
                }),
        "expected restore from checkpoint 5 with 3 replayed slots, got {:?}",
        crashed.recovery_events
    );
    assert_data_plane_identical(&clean, &crashed, "sparse-checkpoint crash at slot 9");
}

#[test]
fn torn_checkpoint_degrades_and_holds_the_deployment() {
    // Corrupt the newest checkpoint in the same slot the crash lands: the
    // restore sees a torn blob and must fall back.
    let plan = crash_at(7).with(ScriptedFault {
        slot: 7,
        kind: FaultKind::CheckpointCorrupt,
        operator: None,
        severity: 1.0,
        duration_slots: 1,
    });
    let rec = RecoveryOptions {
        rewarm_slots: 3,
        ..Default::default()
    };
    let trace = run_recoverable(plan, SEED, SLOTS, rec);
    assert!(
        trace.recovery_events.iter().any(|e| e.slot == 7
            && e.action
                == RecoveryAction::Degraded {
                    reason: DegradeReason::TornCheckpoint,
                }),
        "torn checkpoint should degrade, got {:?}",
        trace.recovery_events
    );
    assert_eq!(trace.fallback_slots, 3, "deployment held for rewarm window");
    // The held window really holds: deployments are frozen over it.
    for t in 7..10 {
        assert_eq!(
            trace.deployments[t], trace.deployments[7],
            "deployment moved during fallback at slot {t}"
        );
    }
    assert!(
        trace
            .recovery_events
            .iter()
            .any(|e| e.action == RecoveryAction::Resumed),
        "fallback window should end with a resume, got {:?}",
        trace.recovery_events
    );
}

#[test]
fn stale_checkpoint_degrades() {
    // Checkpoints only at slot 0; crash at slot 8 exceeds the 2-slot
    // staleness bound.
    let rec = RecoveryOptions {
        checkpoint_every: 100,
        max_checkpoint_age_slots: 2,
        rewarm_slots: 2,
    };
    let trace = run_recoverable(crash_at(8), SEED, SLOTS, rec);
    assert!(
        trace.recovery_events.iter().any(|e| e.slot == 8
            && e.action
                == RecoveryAction::Degraded {
                    reason: DegradeReason::StaleCheckpoint,
                }),
        "stale checkpoint should degrade, got {:?}",
        trace.recovery_events
    );
    assert!(trace.fallback_slots > 0);
}

#[test]
fn controller_crash_layers_onto_data_plane_chaos_without_perturbing_it() {
    let data_plane = FaultPlan {
        scripted: vec![],
        rates: FaultRates {
            pod_crash_prob: 0.1,
            metric_corrupt_prob: 0.15,
            metric_corrupt_factor: 30.0,
            ..Default::default()
        },
    };
    let base = run_recoverable(data_plane.clone(), SEED, SLOTS, RecoveryOptions::default());
    let layered_plan = FaultPlan {
        scripted: crash_at(6).scripted,
        rates: data_plane.rates,
    };
    let layered = run_recoverable(
        layered_plan.clone(),
        SEED,
        SLOTS,
        RecoveryOptions::default(),
    );
    assert_eq!(layered.controller_crashes, 1);
    // The crash restores (checkpoint_every = 1), so decisions — and hence
    // the engine realization — are bit-identical to the crash-free run.
    assert_data_plane_identical(&base, &layered, "controller crash over data-plane chaos");
    let engine_events = |t: &Trace| {
        t.fault_events
            .iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    FaultKind::ControllerCrash
                        | FaultKind::CheckpointCorrupt
                        | FaultKind::CheckpointStale
                )
            })
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(
        engine_events(&base),
        engine_events(&layered),
        "data-plane fault realization must not shift under controller faults"
    );
    // Determinism: the layered run reproduces itself exactly.
    let again = run_recoverable(layered_plan, SEED, SLOTS, RecoveryOptions::default());
    assert_eq!(layered, again);
}

#[test]
fn scripted_and_stochastic_crash_never_double_fire_in_one_slot() {
    let plan = FaultPlan {
        scripted: crash_at(4).scripted,
        rates: FaultRates {
            controller_crash_prob: 1.0,
            ..Default::default()
        },
    };
    let trace = run_recoverable(plan, SEED, 8, RecoveryOptions::default());
    for t in 0..8 {
        let crashes_at_t = trace
            .fault_events
            .iter()
            .filter(|e| e.slot == t && e.kind == FaultKind::ControllerCrash)
            .count();
        assert_eq!(
            crashes_at_t, 1,
            "slot {t}: scripted + stochastic crash must collapse to one event"
        );
    }
    assert_eq!(trace.controller_crashes, 8);
}

#[test]
fn journal_detects_corruption_and_gaps() {
    let raw = SlotMetrics {
        t: 0,
        sim_time_secs: 0.0,
        throughput: 100.0,
        processed_tuples: 100.0,
        dropped_tuples: 0.0,
        cost_dollars: 1.0,
        pods: 2,
        source_rates: vec![50.0],
        reconfigured: false,
        pause_secs: 0.0,
        operators: vec![],
    };
    let mut journal = DecisionJournal::new();
    for t in 0..5 {
        journal.append(&JournalRecord {
            t,
            raw: SlotMetrics { t, ..raw.clone() },
            deployment_before: vec![1, 1],
            decided: vec![2, 2],
            outcome: ReconfigOutcome::Applied,
        });
    }
    // Intact journal round-trips.
    let records = journal.replay_range(0, 5).unwrap();
    assert_eq!(records.len(), 5);
    assert_eq!(records[3].t, 3);
    assert_eq!(records[3].decided, vec![2, 2]);
    // A flipped byte in record 2 is caught by its checksum.
    journal.corrupt_record(2);
    match journal.replay_range(0, 5) {
        Err(JournalError::Corrupt { index, .. }) => assert_eq!(index, 2),
        other => panic!("expected corrupt-record error, got {other:?}"),
    }
    // A missing slot is reported as a gap.
    let mut sparse = DecisionJournal::new();
    for t in [0usize, 1, 3, 4] {
        sparse.append(&JournalRecord {
            t,
            raw: SlotMetrics { t, ..raw.clone() },
            deployment_before: vec![1, 1],
            decided: vec![1, 1],
            outcome: ReconfigOutcome::Held,
        });
    }
    match sparse.replay_range(0, 5) {
        Err(JournalError::Gap { slot }) => assert_eq!(slot, 2),
        other => panic!("expected gap error, got {other:?}"),
    }
}
