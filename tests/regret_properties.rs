//! Empirical Theorem-1 properties as regression tests: Dragster's dynamic
//! regret and fit grow sub-linearly; naive baselines grow linearly; the
//! theoretical Fit bound expression dominates the measured fit.

use dragster::core::{greedy_optimal, Dragster, DragsterConfig, RegretTracker, Theorem1Constants};
use dragster::sim::fluid::SimConfig;
use dragster::sim::{run_experiment, Autoscaler, ClusterConfig, Deployment, FluidSim, NoiseConfig};
use dragster::workloads::{word_count, SineWave};

fn regret_of(scaler: &mut dyn Autoscaler, horizon: usize, seed: u64) -> RegretTracker {
    let w = word_count().unwrap();
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        seed,
        Deployment::uniform(2, 1),
    )
    .unwrap();
    let mut arrival = SineWave {
        mean: w.high_rate.clone(),
        amplitude: 0.2,
        period_slots: 40,
    };
    let trace = run_experiment(&mut sim, scaler, &mut arrival, horizon).unwrap();
    let mut arrival2 = SineWave {
        mean: w.high_rate.clone(),
        amplitude: 0.2,
        period_slots: 40,
    };
    let mut tracker = RegretTracker::new();
    for t in 0..horizon {
        let rates = dragster::sim::ArrivalProcess::rates(&mut arrival2, t);
        let (_, opt) = greedy_optimal(&w.app, &rates, 10, None).unwrap();
        let l: Vec<f64> = trace.slots[t]
            .operators
            .iter()
            .map(|o| o.offered_load - o.capacity_sample)
            .collect();
        tracker.record(opt, trace.ideal_throughput[t], &l);
    }
    tracker
}

#[test]
fn dragster_regret_is_sublinear() {
    let w = word_count().unwrap();
    let mut d = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let tracker = regret_of(&mut d, 160, 42);
    let exp = RegretTracker::growth_exponent(&tracker.regret_series()).expect("long enough series");
    assert!(exp < 0.85, "regret exponent {exp} not sub-linear");
    let fit_exp =
        RegretTracker::growth_exponent(&tracker.fit_series()).expect("long enough series");
    assert!(fit_exp < 0.95, "fit exponent {fit_exp} not sub-linear");
}

#[test]
fn static_regret_is_linear() {
    let mut s = dragster::baselines::StaticScaler;
    let tracker = regret_of(&mut s, 160, 42);
    let exp = RegretTracker::growth_exponent(&tracker.regret_series()).expect("long enough series");
    assert!(exp > 0.9, "static regret exponent {exp} should be ≈ 1");
}

#[test]
fn dragster_regret_well_below_static() {
    let w = word_count().unwrap();
    let mut d = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let mut s = dragster::baselines::StaticScaler;
    let rd = regret_of(&mut d, 120, 7).regret();
    let rs = regret_of(&mut s, 120, 7).regret();
    assert!(
        rd < rs / 10.0,
        "Dragster regret {rd:.3e} not ≪ static {rs:.3e}"
    );
}

#[test]
fn theorem1_fit_bound_dominates_measured_fit() {
    // Evaluate the Fit_T bound of Eq. 19 with the run's actual constants
    // (loose, but it must sit above the measurement):
    //   Fit_T ≤ M^{2/3}H(1 + H/2ε) + H√T/ε + M√(8TβΓ/log(1+σ⁻²))
    // We normalize both sides by H (the bound's capacity scale) to keep
    // the comparison unit-consistent.
    let w = word_count().unwrap();
    let mut d = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let horizon = 120;
    let tracker = regret_of(&mut d, horizon, 42);

    // ε: Slater slack as a fraction of H — the max config exceeds the peak
    // load by ≥ 8 % in this workload.
    let consts = Theorem1Constants {
        m: 2,
        t: horizon,
        d: 1,
        n_configs: 100,
        epsilon: 0.08,
        sigma2: 0.01,
        delta: 2.0,
        g: 1.0,
        v_star: 1.0,
    };
    let bound_normalized = consts.fit_bound();

    // Measured fit normalized by the throughput scale H (peak offered).
    let h_scale = 1.5e5 * 1.2;
    let measured_normalized = tracker.fit_positive() / h_scale;
    assert!(
        measured_normalized < bound_normalized,
        "measured normalized fit {measured_normalized:.1} exceeds Theorem-1 bound {bound_normalized:.1}"
    );
}

#[test]
fn regret_grows_with_optimum_variation() {
    // Assumption 2: faster-moving optima ⇒ more regret. Compare a calm
    // sine against a violent one.
    let w = word_count().unwrap();
    let run = |amplitude: f64| {
        let mut d = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
        let mut sim = FluidSim::new(
            w.app.clone(),
            ClusterConfig::default(),
            SimConfig::default(),
            NoiseConfig::default(),
            11,
            Deployment::uniform(2, 1),
        )
        .unwrap();
        let mut arrival = SineWave {
            mean: w.high_rate.clone(),
            amplitude,
            period_slots: 8,
        };
        let trace = run_experiment(&mut sim, &mut d, &mut arrival, 80).unwrap();
        let mut arrival2 = SineWave {
            mean: w.high_rate.clone(),
            amplitude,
            period_slots: 8,
        };
        let mut tracker = RegretTracker::new();
        for t in 0..80 {
            let rates = dragster::sim::ArrivalProcess::rates(&mut arrival2, t);
            let (_, opt) = greedy_optimal(&w.app, &rates, 10, None).unwrap();
            tracker.record(opt, trace.ideal_throughput[t], &[]);
        }
        tracker.regret()
    };
    let calm = run(0.05);
    let wild = run(0.45);
    assert!(
        wild > calm,
        "violent optimum variation should cost more regret: calm {calm:.3e} wild {wild:.3e}"
    );
}
