//! Robustness: Dragster under heavy cloud noise, overcommit degradation
//! and transient pod failures — the "dynamic cloud noises" and "unexpected
//! changes" of Section 1. Also checks the paper's fit↔latency link: the
//! sub-linear dynamic fit manifests as bounded queueing-latency estimates.

use dragster::core::{greedy_optimal, Dragster, DragsterConfig};
use dragster::sim::fluid::SimConfig;
use dragster::sim::{
    run_experiment, ClusterConfig, ConstantArrival, Deployment, FailureModel, FluidSim,
    NoiseConfig, OvercommitModel, Trace,
};
use dragster::workloads::{group, word_count, DiurnalBursty, SpikeTrain, SquareWave};

fn run_with_noise(noise: NoiseConfig, slots: usize, seed: u64) -> Trace {
    let w = word_count().unwrap();
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        noise,
        seed,
        Deployment::uniform(2, 1),
    )
    .unwrap();
    let mut scaler = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let mut arrival = ConstantArrival(w.high_rate.clone());
    run_experiment(&mut sim, &mut scaler, &mut arrival, slots).unwrap()
}

#[test]
fn converges_under_heavy_observation_noise() {
    let noise = NoiseConfig {
        capacity_jitter_std: 0.10,
        cpu_observation_std: 0.15,
        overcommit: None,
        failures: None,
    };
    let trace = run_with_noise(noise, 30, 42);
    let w = word_count().unwrap();
    let (_, opt) = greedy_optimal(&w.app, &w.high_rate, 10, None).unwrap();
    let tail = trace.ideal_throughput[24..]
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert!(
        tail >= 0.85 * opt,
        "heavy noise broke convergence: {tail} vs {opt}"
    );
}

#[test]
fn survives_overcommit_degradation() {
    let noise = NoiseConfig {
        overcommit: Some(OvercommitModel {
            threshold: 0.7,
            floor: 0.8,
        }),
        ..NoiseConfig::default()
    };
    let trace = run_with_noise(noise, 25, 7);
    // throughput stays positive and near-offered despite degraded capacity
    let mean_tail: f64 = trace.slots[20..].iter().map(|s| s.throughput).sum::<f64>() / 5.0;
    assert!(
        mean_tail > 1.2e5,
        "overcommit collapsed throughput: {mean_tail}"
    );
}

#[test]
fn recovers_from_transient_failures() {
    let noise = NoiseConfig {
        failures: Some(FailureModel {
            prob_per_slot: 0.15,
            capacity_loss: 0.4,
        }),
        ..NoiseConfig::default()
    };
    let trace = run_with_noise(noise, 40, 3);
    // failures dent individual slots, but the mean must stay close to the
    // offered load — the GP averages out the outlier capacity samples.
    let mean: f64 = trace.slots[10..].iter().map(|s| s.throughput).sum::<f64>() / 30.0;
    assert!(mean > 1.25e5, "failures collapsed mean throughput: {mean}");
    // and the controller never wedges: some slot after each failure is good
    let good_slots = trace.slots[10..]
        .iter()
        .filter(|s| s.throughput > 1.3e5)
        .count();
    assert!(good_slots > 15, "too few healthy slots: {good_slots}");
}

#[test]
fn latency_estimate_stays_bounded_after_convergence() {
    // The paper's argument: bounded fit ⇒ bounded buffers ⇒ low latency.
    let trace = run_with_noise(NoiseConfig::default(), 30, 42);
    for s in &trace.slots[10..] {
        assert!(
            s.latency_estimate_secs() < 60.0,
            "queueing latency blew up at slot {}: {:.1}s",
            s.t,
            s.latency_estimate_secs()
        );
    }
}

#[test]
fn latency_spikes_then_drains_on_load_increase() {
    let w = word_count().unwrap();
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        11,
        Deployment::uniform(2, 1),
    )
    .unwrap();
    let mut scaler = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let mut arrival = SquareWave {
        high: w.high_rate.clone(),
        low: w.low_rate.clone(),
        half_period_slots: 15,
    };
    let trace = run_experiment(&mut sim, &mut scaler, &mut arrival, 30).unwrap();
    // latency during the under-provisioned first slot is large…
    assert!(trace.slots[0].latency_estimate_secs() > 30.0);
    // …but drains to a small steady state before the phase ends
    assert!(
        trace.slots[14].latency_estimate_secs() < 10.0,
        "backlog not drained: {:.1}s",
        trace.slots[14].latency_estimate_secs()
    );
}

#[test]
fn absorbs_spike_trains_without_wedging() {
    // 5× one-slot spikes every 8 slots: backlog must drain between spikes
    // and the controller must not ratchet up permanently.
    let w = word_count().unwrap();
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        5,
        Deployment::uniform(2, 1),
    )
    .unwrap();
    let mut scaler = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let mut arrival = SpikeTrain {
        base: w.low_rate.clone(),
        spike_factor: 3.0,
        every_slots: 8,
    };
    let trace = run_experiment(&mut sim, &mut scaler, &mut arrival, 40).unwrap();
    // off-spike slots near the end are served at the base rate with a
    // lean allocation (no permanent ratchet)
    let lean_pods = trace.deployments[38].total_pods();
    assert!(
        lean_pods <= 10,
        "spikes ratcheted the allocation: {lean_pods} pods"
    );
    let base_served = trace.slots[38].throughput;
    assert!(base_served >= w.low_rate[0] * 0.9, "{base_served}");
}

#[test]
fn tracks_diurnal_bursty_production_load() {
    // a day and a half of realistic load: diurnal swing, noise, bursts
    let w = word_count().unwrap();
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        21,
        Deployment::uniform(2, 1),
    )
    .unwrap();
    let mut scaler = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let mut arrival = DiurnalBursty::new(vec![1.0e5], 77);
    let trace = run_experiment(&mut sim, &mut scaler, &mut arrival, 216).unwrap();
    // after warm-up, stay within 20 % of the per-slot ideal on ≥ 80 % of
    // slots (bursts legitimately dent individual slots)
    let good = trace.slots[20..]
        .iter()
        .zip(trace.ideal_throughput[20..].iter())
        .filter(|(s, &ideal)| s.throughput >= 0.8 * ideal)
        .count();
    assert!(
        good * 10 >= 196 * 8,
        "only {good}/196 slots tracked the diurnal load"
    );
    // allocation breathes with the day: max pods > min pods after warmup
    let pods: Vec<usize> = trace.deployments[20..]
        .iter()
        .map(|d| d.total_pods())
        .collect();
    let (lo, hi) = (pods.iter().min().unwrap(), pods.iter().max().unwrap());
    assert!(hi > lo, "allocation never adapted: {lo}..{hi}");
}

#[test]
fn single_operator_app_with_minimal_budget() {
    // degenerate corner: one operator, budget equal to one pod
    let w = group().unwrap();
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig {
            budget_pods: Some(1),
            ..Default::default()
        },
        SimConfig::default(),
        NoiseConfig::default(),
        1,
        Deployment::uniform(1, 1),
    )
    .unwrap();
    let cfg = DragsterConfig {
        budget_pods: Some(1),
        ..DragsterConfig::saddle_point()
    };
    let mut scaler = Dragster::new(w.app.topology.clone(), cfg);
    let mut arrival = dragster::sim::ConstantArrival(w.high_rate.clone());
    let trace = run_experiment(&mut sim, &mut scaler, &mut arrival, 5).unwrap();
    for d in &trace.deployments {
        assert_eq!(d.tasks, vec![1]);
    }
    // still processes at its (single-task) capacity
    assert!(trace.slots[4].throughput > 2.0e4);
}

#[test]
fn failure_free_and_failing_runs_differ_only_stochastically() {
    // sanity: the failure path doesn't perturb the RNG stream used by the
    // other noise sources in the no-failure case
    let a = run_with_noise(NoiseConfig::default(), 5, 99);
    let b = run_with_noise(
        NoiseConfig {
            failures: Some(FailureModel {
                prob_per_slot: 0.0,
                capacity_loss: 0.5,
            }),
            ..NoiseConfig::default()
        },
        5,
        99,
    );
    // prob 0 failures: identical only if sampling zero-probability events
    // doesn't consume entropy differently; we accept either but both must
    // converge similarly
    let fa: f64 = a.slots.iter().map(|s| s.throughput).sum();
    let fb: f64 = b.slots.iter().map(|s| s.throughput).sum();
    assert!((fa - fb).abs() / fa < 0.25);
}
